package ehrhart

import (
	"math/rand"
	"testing"

	"testing/quick"

	"repro/internal/nest"
	"repro/internal/nest/nesttest"
	"repro/internal/poly"
)

func correlationNest() *nest.Nest {
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
}

func tetraNest() *nest.Nest {
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1"))
}

func TestSumPowerAgainstBruteForce(t *testing.T) {
	for m := 0; m <= 6; m++ {
		s := SumPower(m, poly.Var("n"))
		for nv := int64(0); nv <= 20; nv++ {
			want := int64(0)
			for x := int64(1); x <= nv; x++ {
				p := int64(1)
				for k := 0; k < m; k++ {
					p *= x
				}
				want += p
			}
			got, err := s.EvalInt64(map[string]int64{"n": nv})
			if err != nil {
				t.Fatal(err)
			}
			if !got.IsInt() || got.Num().Int64() != want {
				t.Fatalf("SumPower(%d) at n=%d: got %s, want %d", m, nv, got, want)
			}
		}
	}
}

func TestSumPowerPolynomialLimit(t *testing.T) {
	// Σ_{x=1}^{2m+1} x should equal (2m+1)(2m+2)/2 as a polynomial in m.
	s := SumPower(1, poly.MustParse("2*m+1"))
	want := poly.MustParse("(2*m+1)*(2*m+2)/2")
	if !s.Equal(want) {
		t.Errorf("SumPower(1, 2m+1) = %s, want %s", s, want)
	}
}

func TestSumAgainstBruteForce(t *testing.T) {
	// Σ_{j=i+1}^{N-1} (j + 2i) with polynomial limits.
	p := poly.MustParse("j + 2*i")
	s := Sum(p, "j", poly.MustParse("i+1"), poly.MustParse("N-1"))
	if s.HasVar("j") {
		t.Fatalf("summation variable survived: %s", s)
	}
	for N := int64(1); N <= 10; N++ {
		for i := int64(0); i < N; i++ {
			want := int64(0)
			for j := i + 1; j <= N-1; j++ {
				want += j + 2*i
			}
			got, err := s.EvalInt64(map[string]int64{"i": i, "N": N})
			if err != nil {
				t.Fatal(err)
			}
			if !got.IsInt() || got.Num().Int64() != want {
				t.Fatalf("Sum at i=%d N=%d: got %s, want %d", i, N, got, want)
			}
		}
	}
}

func TestSumEmptyRange(t *testing.T) {
	// Σ_{x=5}^{4} anything = 0.
	s := Sum(poly.MustParse("x^2+1"), "x", poly.Int(5), poly.Int(4))
	if !s.IsZero() {
		t.Errorf("empty sum = %s", s)
	}
}

func TestCountCorrelation(t *testing.T) {
	// Paper: total iterations = (N-1)N/2.
	c := Count(correlationNest())
	want := poly.MustParse("(N-1)*N/2")
	if !c.Equal(want) {
		t.Errorf("Count = %s, want %s", c, want)
	}
}

func TestCountTetra(t *testing.T) {
	// Paper: total iterations = (N^3 - N)/6.
	c := Count(tetraNest())
	want := poly.MustParse("(N^3 - N)/6")
	if !c.Equal(want) {
		t.Errorf("Count = %s, want %s", c, want)
	}
}

func TestRankingCorrelationMatchesPaper(t *testing.T) {
	// Paper §III: r(i,j) = (2iN + 2j - i² - 3i)/2.
	r := Ranking(correlationNest())
	want := poly.MustParse("(2*i*N + 2*j - i^2 - 3*i)/2")
	if !r.Equal(want) {
		t.Errorf("Ranking = %s, want %s", r, want)
	}
}

func TestRankingTetraMatchesPaper(t *testing.T) {
	// Paper §IV.C: r(i,j,k) = (6k - 3j² + 6ij + 3j + i³ + 3i² + 2i + 6)/6.
	r := Ranking(tetraNest())
	want := poly.MustParse("(6*k - 3*j^2 + 6*i*j + 3*j + i^3 + 3*i^2 + 2*i + 6)/6")
	if !r.Equal(want) {
		t.Errorf("Ranking = %s, want %s", r, want)
	}
}

func TestRankingPaperSpotChecks(t *testing.T) {
	r := Ranking(correlationNest())
	eval := func(i, j, N int64) int64 {
		v, err := r.EvalInt64(map[string]int64{"i": i, "j": j, "N": N})
		if err != nil || !v.IsInt() {
			t.Fatalf("eval(%d,%d,%d): %v %v", i, j, N, v, err)
		}
		return v.Num().Int64()
	}
	N := int64(10)
	if got := eval(0, 1, N); got != 1 {
		t.Errorf("r(0,1) = %d", got)
	}
	if got := eval(0, N-1, N); got != N-1 {
		t.Errorf("r(0,N-1) = %d", got)
	}
	if got := eval(1, 2, N); got != N {
		t.Errorf("r(1,2) = %d", got)
	}
	if got := eval(N-2, N-1, N); got != (N-1)*N/2 {
		t.Errorf("r(N-2,N-1) = %d", got)
	}
}

// The central property: Ranking enumerates 1,2,3,… in lexicographic
// order, and Count equals brute-force counting, on random regular nests.
func TestRankingAndCountPropertyOnRandomNests(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		n, params := nesttest.RandRegularNest(r)
		inst := n.MustBind(params)
		rp := Ranking(n)
		order := append(append([]string(nil), n.Params...), n.Indices()...)
		comp, err := rp.Compile(order)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, len(order))
		vals[0] = params["N"]
		var rank int64
		inst.Enumerate(func(idx []int64) bool {
			rank++
			copy(vals[1:], idx)
			if got := comp.EvalExact(vals); got != rank {
				t.Fatalf("trial %d nest\n%srank(%v) = %d, want %d", trial, n, idx, got, rank)
			}
			return true
		})
		cnt := Count(n)
		cv, err := cnt.EvalInt64(params)
		if err != nil {
			t.Fatal(err)
		}
		if !cv.IsInt() || cv.Num().Int64() != rank {
			t.Fatalf("trial %d: Count = %s, brute = %d", trial, cv, rank)
		}
	}
}

func TestRankingNonZeroLowerBounds(t *testing.T) {
	n, params := nesttest.NonZeroLowerNest()
	inst := n.MustBind(params)
	rp := Ranking(n)
	var rank int64
	inst.Enumerate(func(idx []int64) bool {
		rank++
		env := map[string]int64{"N": params["N"]}
		for q, name := range n.Indices() {
			env[name] = idx[q]
		}
		v, err := rp.EvalInt64(env)
		if err != nil || !v.IsInt() || v.Num().Int64() != rank {
			t.Fatalf("rank(%v) = %v (err %v), want %d", idx, v, err, rank)
		}
		return true
	})
}

func TestCheckDegree(t *testing.T) {
	if err := CheckDegree(Ranking(tetraNest())); err != nil {
		t.Errorf("tetra ranking rejected: %v", err)
	}
	if err := CheckDegree(poly.MustParse("i^5 + j")); err == nil {
		t.Error("degree-5 polynomial accepted")
	}
	// A 5-deep nest all depending on i exceeds the §IV.B limit.
	deep := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "i+1"),
		nest.L("l", "0", "i+1"),
		nest.L("m", "0", "i+1"),
	)
	if err := CheckDegree(Ranking(deep)); err == nil {
		t.Error("5-fold dependence on i accepted")
	}
}

func TestRankingRectangularReducesToClassic(t *testing.T) {
	// For a rectangular nest the ranking must be the classic linearisation
	// i*N2 + j + 1.
	n := nest.MustNew([]string{"N1", "N2"}, nest.L("i", "0", "N1"), nest.L("j", "0", "N2"))
	r := Ranking(n)
	want := poly.MustParse("i*N2 + j + 1")
	if !r.Equal(want) {
		t.Errorf("rectangular ranking = %s, want %s", r, want)
	}
}

// Two-parameter nests: ranking and counting must stay exact when several
// size parameters appear in the bounds.
func TestRankingTwoParamNests(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		n, params := nesttest.RandTwoParamNest(r)
		inst := n.MustBind(params)
		if err := inst.CheckRegular(); err != nil {
			t.Fatalf("trial %d nest\n%s: %v", trial, n, err)
		}
		rp := Ranking(n)
		env := map[string]int64{"N": params["N"], "M": params["M"]}
		var rank int64
		inst.Enumerate(func(idx []int64) bool {
			rank++
			for q, name := range n.Indices() {
				env[name] = idx[q]
			}
			v, err := rp.EvalInt64(env)
			if err != nil || !v.IsInt() || v.Num().Int64() != rank {
				t.Fatalf("trial %d nest\n%srank(%v) = %v (err %v), want %d", trial, n, idx, v, err, rank)
			}
			return true
		})
		cv, err := Count(n).EvalInt64(params)
		if err != nil || !cv.IsInt() || cv.Num().Int64() != rank {
			t.Fatalf("trial %d: Count = %v (err %v), brute = %d", trial, cv, err, rank)
		}
	}
}

// Sum is linear: Σ (a·p + b·q) = a·Σp + b·Σq (testing/quick over random
// polynomials with polynomial limits).
func TestSumLinearity(t *testing.T) {
	lo, hi := poly.MustParse("i+1"), poly.MustParse("N-1")
	f := func(ca, cb int8) bool {
		p := poly.MustParse("j^2 - 3*j + N")
		q := poly.MustParse("2*j + i")
		a, b := int64(ca), int64(cb)
		lhs := Sum(p.ScaleInt(a).Add(q.ScaleInt(b)), "j", lo, hi)
		rhs := Sum(p, "j", lo, hi).ScaleInt(a).Add(Sum(q, "j", lo, hi).ScaleInt(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Sum splits over adjacent ranges: Σ_{a..c} = Σ_{a..b} + Σ_{b+1..c}.
func TestSumRangeSplit(t *testing.T) {
	p := poly.MustParse("x^3 - x + 2")
	a, b, c := poly.Int(2), poly.MustParse("m"), poly.MustParse("n")
	whole := Sum(p, "x", a, c)
	split := Sum(p, "x", a, b).Add(Sum(p, "x", b.Add(poly.One()), c))
	if !whole.Equal(split) {
		t.Errorf("range split violated:\n%s\nvs\n%s", whole, split)
	}
}
