package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/nest"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// renamedCorrelation is correlation3 with every name re-spelled — the
// same structure, so it must hit a cache populated by correlation3.
func renamedCorrelation() *nest.Nest {
	return nest.MustNew([]string{"M"},
		nest.L("a", "0", "M-1"),
		nest.L("b", "a+1", "M"),
		nest.L("c", "0", "M"),
	)
}

func TestNestSignatureAlphaInvariance(t *testing.T) {
	s1, ok1 := NestSignature(correlation3(), 2, unrank.Options{})
	s2, ok2 := NestSignature(renamedCorrelation(), 2, unrank.Options{})
	if !ok1 || !ok2 {
		t.Fatalf("cacheable nests reported uncacheable: %v %v", ok1, ok2)
	}
	if s1 != s2 {
		t.Errorf("α-renamed nests sign differently:\n  %s\n  %s", s1, s2)
	}
	// Different band depth, options, or shape must sign differently.
	if s3, _ := NestSignature(correlation3(), 3, unrank.Options{}); s3 == s1 {
		t.Error("c=2 and c=3 share a signature")
	}
	if s4, _ := NestSignature(correlation3(), 2, unrank.Options{Verify: true}); s4 == s1 {
		t.Error("verify on/off share a signature")
	}
	if s5, _ := NestSignature(correlation3(), 2, unrank.Options{Mode: unrank.ModeBinarySearch}); s5 == s1 {
		t.Error("closed-form and binary-search share a signature")
	}
	tet := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"), nest.L("j", "0", "i+1"), nest.L("k", "0", "N"))
	if s6, _ := NestSignature(tet, 2, unrank.Options{}); s6 == s1 {
		t.Error("different shapes share a signature")
	}
	// Explicit defaults and the zero value are the same problem.
	if s7, _ := NestSignature(correlation3(), 2, unrank.Options{MaxEnum: 4096, MaxCorrection: 8}); s7 != s1 {
		t.Error("explicit defaults sign differently from the zero value")
	}
	// Custom selection samples are not canonicalizable.
	if _, ok := NestSignature(correlation3(), 2,
		unrank.Options{SampleParams: []map[string]int64{{"N": 5}}}); ok {
		t.Error("custom SampleParams reported cacheable")
	}
}

func TestCollapseCachedHitMatchesFreshCompile(t *testing.T) {
	cache := NewCollapseCache(8)
	tel := telemetry.New()
	opts := unrank.Options{Telemetry: tel}

	cold, err := CollapseCached(cache, correlation3(), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CollapseCached(cache, renamedCorrelation(), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %v, want 1 hit / 1 miss", st)
	}
	if got := tel.Counter("cache.hits").Value(); got != 1 {
		t.Errorf("telemetry cache.hits = %d", got)
	}
	if got := tel.Counter("cache.misses").Value(); got != 1 {
		t.Errorf("telemetry cache.misses = %d", got)
	}

	// The adapted artifact must speak the caller's names...
	fresh := MustCollapse(renamedCorrelation(), 2, unrank.Options{})
	if warm.Ranking.String() != fresh.Ranking.String() {
		t.Errorf("renamed ranking = %s, want %s", warm.Ranking, fresh.Ranking)
	}
	if warm.Total.String() != fresh.Total.String() {
		t.Errorf("renamed total = %s, want %s", warm.Total, fresh.Total)
	}
	if warm.SubNest.Loops[0].Index != "a" || warm.SubNest.Loops[1].Index != "b" {
		t.Errorf("sub-nest indices = %v", warm.SubNest.Indices())
	}
	// ...and recover exactly the same tuples as a fresh compile.
	for _, res := range []*Result{warm, fresh} {
		b, err := res.Unranker.Bind(map[string]int64{"M": 17})
		if err != nil {
			t.Fatal(err)
		}
		idx := make([]int64, 2)
		want := [][2]int64{}
		inst := b.Instance()
		inst.Enumerate(func(i []int64) bool {
			want = append(want, [2]int64{i[0], i[1]})
			return true
		})
		if int64(len(want)) != b.Total() {
			t.Fatalf("enumerated %d, Total %d", len(want), b.Total())
		}
		for pc := int64(1); pc <= b.Total(); pc++ {
			if err := b.Unrank(pc, idx); err != nil {
				t.Fatal(err)
			}
			if idx[0] != want[pc-1][0] || idx[1] != want[pc-1][1] {
				t.Fatalf("pc=%d: got (%d,%d), want %v", pc, idx[0], idx[1], want[pc-1])
			}
		}
	}
	// The cold result still uses the original names.
	if cold.SubNest.Loops[0].Index != "i" {
		t.Errorf("cold sub-nest indices = %v", cold.SubNest.Indices())
	}
}

func TestCollapseCacheEviction(t *testing.T) {
	cache := NewCollapseCache(1) // one entry per shard after rounding
	for d := int64(1); d <= 40; d++ {
		n := nest.MustNew([]string{"N"},
			nest.L("i", "0", "N"),
			nest.L("j", "0", fmt.Sprintf("i+%d", d)),
		)
		if _, err := CollapseCached(cache, n, 2, unrank.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions after 40 distinct nests in a capacity-1 cache: %v", st)
	}
	if st.Entries > cacheShards {
		t.Errorf("entries %d exceed the per-shard bound: %v", st.Entries, st)
	}
	if st.Misses != 40 {
		t.Errorf("misses = %d, want 40", st.Misses)
	}
}

// TestCollapseCacheConcurrent hammers one cache from many goroutines
// with a mix of identical and distinct nests — the race-detector run of
// this package (make race) is the real assertion; the test additionally
// checks every returned artifact recovers a correct first tuple.
func TestCollapseCacheConcurrent(t *testing.T) {
	cache := NewCollapseCache(8)
	shapes := []*nest.Nest{
		correlation3(),
		renamedCorrelation(),
		nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "i+1")),
		nest.MustNew([]string{"K"}, nest.L("x", "0", "K"), nest.L("y", "0", "x+1")),
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 6; rep++ {
				n := shapes[(w+rep)%len(shapes)]
				res, err := CollapseCached(cache, n, 2, unrank.Options{})
				if err != nil {
					errs <- err
					return
				}
				params := map[string]int64{n.Params[0]: 9}
				b, err := res.Unranker.Bind(params)
				if err != nil {
					errs <- err
					return
				}
				idx := make([]int64, 2)
				first := make([]int64, 2)
				if !b.First(first) {
					errs <- fmt.Errorf("empty space for %v", params)
					return
				}
				if err := b.Unrank(1, idx); err != nil {
					errs <- err
					return
				}
				if idx[0] != first[0] || idx[1] != first[1] {
					errs <- fmt.Errorf("unrank(1) = %v, first = %v", idx, first)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("no cache hits across concurrent repeats: %v", st)
	}
}
