// Package transform provides exact affine loop transformations on the
// Fig. 5 nest model — the role Pluto plays in the paper's pipeline
// (§VII: "we applied our tool to collapse loops that have previously
// been transformed into non-rectangular loops by ... Pluto"). The
// transformations here are unimodular changes of the iteration vector,
// so they preserve the number of points and map bounds to affine bounds:
//
//   - Normalize shifts every loop's lower bound to 0 (the paper's
//     "without loss of generality, assume every loop's lower bound is
//     equal to 0" — §IV.A);
//   - Skew replaces a loop index j by j' = j + f·i for an outer index i
//     (producing the rhomboidal/parallelepiped shapes of the abstract);
//   - Reverse flips a loop's direction.
//
// Each transformation returns the new nest together with a Map that
// converts transformed iteration tuples back to original ones, so a
// collapsed transformed nest still executes the original statement
// instances.
package transform

import (
	"fmt"

	"repro/internal/nest"
	"repro/internal/poly"
)

// Map converts an iteration tuple of the transformed nest into the
// corresponding tuple of the original nest (in place into dst; src and
// dst may alias).
type Map func(src, dst []int64)

// Identity returns the identity map for a given depth.
func Identity(depth int) Map {
	return func(src, dst []int64) {
		copy(dst[:depth], src[:depth])
	}
}

// Compose returns the map applying first, then second (i.e. second ∘
// first when reading tuples through the chain of transformations:
// transformed -> intermediate -> original).
func Compose(first, second Map) Map {
	return func(src, dst []int64) {
		first(src, dst)
		second(dst, dst)
	}
}

// Transformed couples a transformed nest with the per-binding recovery
// of original indices.
type Transformed struct {
	// Nest is the transformed nest.
	Nest *nest.Nest
	// offsets[k] (in new outer indices and parameters) and signs[k]
	// reconstruct original_k = signs[k]*new_k + offsets[k].
	offsets []*poly.Poly
	signs   []int64
	src     *nest.Nest
}

// Source returns the original nest.
func (tr *Transformed) Source() *nest.Nest { return tr.src }

// BindMap resolves the tuple map for concrete parameter values. The
// returned Map reuses an internal buffer and is not safe for concurrent
// use — build one per goroutine.
func (tr *Transformed) BindMap(params map[string]int64) (Map, error) {
	depth := len(tr.offsets)
	order := append(append([]string(nil), tr.Nest.Params...), tr.Nest.Indices()...)
	comps := make([]*poly.Compiled, depth)
	for k, off := range tr.offsets {
		c, err := off.Compile(order[:len(tr.Nest.Params)+k])
		if err != nil {
			return nil, err
		}
		comps[k] = c
	}
	np := len(tr.Nest.Params)
	base := make([]int64, np+depth)
	for i, p := range tr.Nest.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("transform: missing parameter %q", p)
		}
		base[i] = v
	}
	signs := tr.signs
	return func(src, dst []int64) {
		vals := base
		copy(vals[np:], src[:depth])
		for k := 0; k < depth; k++ {
			off := comps[k].EvalExact(vals[:np+k])
			dst[k] = signs[k]*src[k] + off
		}
	}, nil
}

// Normalize rewrites every loop so its lower bound is 0, substituting
// i_k = i'_k + l_k(outer) throughout the deeper bounds (the paper's
// "without loss of generality" normal form, §IV.A). Bounds remain affine
// because each l_k is affine in the outer iterators.
func Normalize(n *nest.Nest) (*Transformed, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	depth := n.Depth()
	offsets := make([]*poly.Poly, depth)
	signs := make([]int64, depth)
	loops := make([]nest.Loop, depth)
	subst := map[string]*poly.Poly{}
	for k, l := range n.Loops {
		lo := l.Lower.SubstAll(subst)
		hi := l.Upper.SubstAll(subst)
		offsets[k] = lo
		signs[k] = 1
		loops[k] = nest.Loop{Index: l.Index, Lower: poly.Int(0), Upper: hi.Sub(lo)}
		subst[l.Index] = poly.Var(l.Index).Add(lo)
	}
	out, err := nest.New(append([]string(nil), n.Params...), loops...)
	if err != nil {
		return nil, fmt.Errorf("transform: normalized nest invalid: %w", err)
	}
	return &Transformed{Nest: out, offsets: offsets, signs: signs, src: n}, nil
}

// Skew replaces loop `level`'s index j by j' = j + factor·i, where i is
// the index of the strictly outer loop `wrt`. The transformation is
// unimodular: bounds of level become Lower+factor·i .. Upper+factor·i,
// and deeper bounds substitute j = j' − factor·i.
func Skew(n *nest.Nest, level, wrt int, factor int64) (*Transformed, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if wrt >= level || level >= n.Depth() || wrt < 0 {
		return nil, fmt.Errorf("transform: skew needs 0 <= wrt < level < depth (got %d, %d)", wrt, level)
	}
	shift := poly.Var(n.Loops[wrt].Index).ScaleInt(factor)
	loops := append([]nest.Loop(nil), n.Loops...)
	loops[level] = nest.Loop{
		Index: loops[level].Index,
		Lower: loops[level].Lower.Add(shift),
		Upper: loops[level].Upper.Add(shift),
	}
	// Deeper bounds see the original j = j' - factor*i.
	jName := n.Loops[level].Index
	orig := poly.Var(jName).Sub(shift)
	for q := level + 1; q < n.Depth(); q++ {
		loops[q] = nest.Loop{
			Index: loops[q].Index,
			Lower: loops[q].Lower.Subst(jName, orig),
			Upper: loops[q].Upper.Subst(jName, orig),
		}
	}
	out, err := nest.New(append([]string(nil), n.Params...), loops...)
	if err != nil {
		return nil, fmt.Errorf("transform: skewed nest invalid: %w", err)
	}
	offsets := make([]*poly.Poly, n.Depth())
	signs := make([]int64, n.Depth())
	for k := range offsets {
		signs[k] = 1
		offsets[k] = poly.Zero()
	}
	offsets[level] = shift.Neg() // original j = new j' - factor*i
	return &Transformed{Nest: out, offsets: offsets, signs: signs, src: n}, nil
}

// Reverse flips loop `level`: i' = -i, turning [l, u) into (-u, -l],
// i.e. new bounds [1-u, 1-l); deeper bounds substitute i = -i'.
// Reversal changes the lexicographic execution order along that level —
// only valid when the collapsed loops are dependence-free, which the
// collapsing transformation requires anyway.
func Reverse(n *nest.Nest, level int) (*Transformed, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if level < 0 || level >= n.Depth() {
		return nil, fmt.Errorf("transform: level %d out of range", level)
	}
	loops := append([]nest.Loop(nil), n.Loops...)
	l := loops[level]
	one := poly.One()
	loops[level] = nest.Loop{
		Index: l.Index,
		Lower: one.Sub(l.Upper),
		Upper: one.Sub(l.Lower),
	}
	name := l.Index
	neg := poly.Var(name).Neg()
	for q := level + 1; q < n.Depth(); q++ {
		loops[q] = nest.Loop{
			Index: loops[q].Index,
			Lower: loops[q].Lower.Subst(name, neg),
			Upper: loops[q].Upper.Subst(name, neg),
		}
	}
	out, err := nest.New(append([]string(nil), n.Params...), loops...)
	if err != nil {
		return nil, fmt.Errorf("transform: reversed nest invalid: %w", err)
	}
	offsets := make([]*poly.Poly, n.Depth())
	signs := make([]int64, n.Depth())
	for k := range offsets {
		signs[k] = 1
		offsets[k] = poly.Zero()
	}
	signs[level] = -1
	return &Transformed{Nest: out, offsets: offsets, signs: signs, src: n}, nil
}
