package core

import (
	"reflect"
	"testing"

	"repro/internal/nest"
	"repro/internal/unrank"
)

// TestCollapseAtInnerBand collapses the (j, k) band of a 3-deep
// triangular chain, with the outer i acting as a symbolic parameter of
// the ranking polynomial; the bijection must hold for every value of i.
func TestCollapseAtInnerBand(t *testing.T) {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "N"),
		nest.L("k", "j", "N"),
	)
	r, err := CollapseAt(n, 1, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.C != 2 {
		t.Fatalf("C = %d", r.C)
	}
	// The sub-nest's parameters are N and the outer iterator i.
	if got := r.SubNest.Params; !reflect.DeepEqual(got, []string{"N", "i"}) {
		t.Fatalf("sub params = %v", got)
	}
	N := int64(9)
	for i := int64(0); i < N; i++ {
		b, err := r.Unranker.Bind(map[string]int64{"N": N, "i": i})
		if err != nil {
			t.Fatal(err)
		}
		// Total = number of (j, k) pairs with i <= j <= k < N.
		m := N - i
		want := m * (m + 1) / 2
		if b.Total() != want {
			t.Fatalf("i=%d: Total = %d, want %d", i, b.Total(), want)
		}
		idx := make([]int64, 2)
		var pc int64
		b.Instance().Enumerate(func(truth []int64) bool {
			pc++
			if err := b.Unrank(pc, idx); err != nil {
				t.Fatalf("i=%d pc=%d: %v", i, pc, err)
			}
			if !reflect.DeepEqual(idx, truth) {
				t.Fatalf("i=%d pc=%d: got %v want %v", i, pc, idx, truth)
			}
			return true
		})
	}
}

// TestCollapseAtMiddleBand leaves a loop below the collapsed band.
func TestCollapseAtMiddleBand(t *testing.T) {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
		nest.L("l", "0", "N"),
	)
	r, err := CollapseAt(n, 1, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SubNest.Depth() != 2 || r.SubNest.Loops[0].Index != "j" {
		t.Fatalf("band = %v", r.SubNest.Indices())
	}
	b, err := r.Unranker.Bind(map[string]int64{"N": 8, "i": 5})
	if err != nil {
		t.Fatal(err)
	}
	// (j, k) with 0 <= j <= k <= 5: 21 pairs.
	if b.Total() != 21 {
		t.Errorf("Total = %d", b.Total())
	}
}

func TestCollapseAtFromZeroDelegates(t *testing.T) {
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	r, err := CollapseAt(n, 0, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SubNest.Params) != 1 {
		t.Errorf("params = %v", r.SubNest.Params)
	}
}

func TestCollapseAtErrors(t *testing.T) {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"), nest.L("j", "i", "N"))
	if _, err := CollapseAt(n, -1, 1, unrank.Options{}); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := CollapseAt(n, 2, 1, unrank.Options{}); err == nil {
		t.Error("from beyond depth accepted")
	}
	if _, err := CollapseAt(n, 1, 2, unrank.Options{}); err == nil {
		t.Error("band beyond depth accepted")
	}
	if _, err := CollapseAt(n, 1, 0, unrank.Options{}); err == nil {
		t.Error("zero band accepted")
	}
	if _, err := CollapseAt(&nest.Nest{}, 0, 1, unrank.Options{}); err == nil {
		t.Error("invalid nest accepted")
	}
}
