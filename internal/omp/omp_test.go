package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/unrank"
)

var allScheds = []Schedule{
	{Kind: Static},
	{Kind: StaticChunk, Chunk: 3},
	{Kind: StaticChunk, Chunk: 1},
	{Kind: Dynamic},
	{Kind: Dynamic, Chunk: 5},
	{Kind: Guided},
	{Kind: Guided, Chunk: 4},
}

func TestParallelForExactlyOnce(t *testing.T) {
	for _, sched := range allScheds {
		for _, threads := range []int{1, 2, 3, 7} {
			for _, n := range []int64{0, 1, 5, 64, 1000} {
				counts := make([]int32, n)
				ParallelFor(threads, 0, n, sched, func(tid int, i int64) {
					atomic.AddInt32(&counts[i], 1)
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("sched %v threads=%d n=%d: index %d ran %d times", sched, threads, n, i, c)
					}
				}
			}
		}
	}
}

func TestParallelForNonZeroLo(t *testing.T) {
	var sum atomic.Int64
	ParallelFor(4, 10, 20, Schedule{Kind: Dynamic, Chunk: 3}, func(tid int, i int64) {
		sum.Add(i)
	})
	if got := sum.Load(); got != 145 {
		t.Errorf("sum = %d, want 145", got)
	}
}

func TestStaticContiguity(t *testing.T) {
	// Static must hand each thread a single contiguous block, in order.
	var mu sync.Mutex
	blocks := map[int][][2]int64{}
	ParallelForChunks(4, 0, 103, Schedule{Kind: Static}, func(tid int, lo, hi int64) {
		mu.Lock()
		blocks[tid] = append(blocks[tid], [2]int64{lo, hi})
		mu.Unlock()
	})
	var totalLen int64
	for tid, bs := range blocks {
		if len(bs) != 1 {
			t.Errorf("thread %d got %d blocks", tid, len(bs))
		}
		totalLen += bs[0][1] - bs[0][0]
	}
	if totalLen != 103 {
		t.Errorf("covered %d iterations, want 103", totalLen)
	}
	// Block sizes must differ by at most 1 (perfect balance in counts).
	var minSz, maxSz int64 = 1 << 62, 0
	for _, bs := range blocks {
		sz := bs[0][1] - bs[0][0]
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Errorf("static imbalance in iteration counts: min %d max %d", minSz, maxSz)
	}
}

func TestStaticChunkRoundRobin(t *testing.T) {
	// With chunk=2 and 3 threads over [0,12), thread 0 gets [0,2),[6,8), etc.
	var mu sync.Mutex
	owner := map[int64]int{}
	ParallelForChunks(3, 0, 12, Schedule{Kind: StaticChunk, Chunk: 2}, func(tid int, lo, hi int64) {
		mu.Lock()
		owner[lo] = tid
		mu.Unlock()
		if hi-lo != 2 {
			t.Errorf("chunk [%d,%d) wrong size", lo, hi)
		}
	})
	want := map[int64]int{0: 0, 2: 1, 4: 2, 6: 0, 8: 1, 10: 2}
	for lo, tid := range want {
		if owner[lo] != tid {
			t.Errorf("chunk at %d owned by %d, want %d", lo, owner[lo], tid)
		}
	}
}

func TestGuidedChunksDecreaseAndCover(t *testing.T) {
	var mu sync.Mutex
	var sizes []int64
	var covered int64
	ParallelForChunks(4, 0, 1000, Schedule{Kind: Guided}, func(tid int, lo, hi int64) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		covered += hi - lo
		mu.Unlock()
	})
	if covered != 1000 {
		t.Errorf("guided covered %d", covered)
	}
	if len(sizes) < 5 {
		t.Errorf("guided produced only %d chunks", len(sizes))
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" ||
		Guided.String() != "guided" || StaticChunk.String() != "static,chunk" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func correlationResult() *core.Result {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "i+1", "N"),
	)
	return core.MustCollapse(n, 2, unrank.Options{})
}

func TestCollapsedForExactlyOnce(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 40}
	N := params["N"]
	for _, sched := range allScheds {
		for _, threads := range []int{1, 3, 8} {
			counts := make([]int32, N*N)
			err := CollapsedFor(r, params, threads, sched, func(tid int, idx []int64) {
				atomic.AddInt32(&counts[idx[0]*N+idx[1]], 1)
			})
			if err != nil {
				t.Fatal(err)
			}
			var total int32
			for i := int64(0); i < N; i++ {
				for j := int64(0); j < N; j++ {
					c := counts[i*N+j]
					inDomain := i < N-1 && j > i
					if inDomain && c != 1 {
						t.Fatalf("sched %v threads %d: (%d,%d) ran %d times", sched, threads, i, j, c)
					}
					if !inDomain && c != 0 {
						t.Fatalf("sched %v: out-of-domain (%d,%d) executed", sched, i, j)
					}
					total += c
				}
			}
			if want := int32((N - 1) * N / 2); total != want {
				t.Fatalf("total %d, want %d", total, want)
			}
		}
	}
}

func TestCollapsedForEveryMatches(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 25}
	N := params["N"]
	a := make([]int32, N*N)
	b := make([]int32, N*N)
	if err := CollapsedFor(r, params, 4, Schedule{Kind: Static}, func(tid int, idx []int64) {
		atomic.AddInt32(&a[idx[0]*N+idx[1]], 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := CollapsedForEvery(r, params, 4, Schedule{Kind: Dynamic, Chunk: 2}, func(tid int, idx []int64) {
		atomic.AddInt32(&b[idx[0]*N+idx[1]], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coverage differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunCollapsedWithStats(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 60}
	threads := 12
	var n atomic.Int64
	cs, err := RunCollapsedWithStats(r, params, threads, Schedule{Kind: Static}, func(tid int, idx []int64) {
		n.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != cs.Total {
		t.Errorf("executed %d, total %d", n.Load(), cs.Total)
	}
	// §V static scheme: one costly recovery per thread.
	if cs.Stats.RootEvals > int64(threads) {
		t.Errorf("RootEvals = %d, want <= %d (once per thread)", cs.Stats.RootEvals, threads)
	}
	if cs.Stats.RootEvals == 0 {
		t.Error("no root evaluations recorded")
	}
}

func TestCollapsedForSIMD(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 30}
	N := params["N"]
	for _, vlength := range []int{1, 4, 7, 16} {
		counts := make([]int32, N*N)
		var batches atomic.Int64
		err := CollapsedForSIMD(r, params, 3, vlength, func(tid int, batch [][]int64) {
			batches.Add(1)
			if len(batch) == 0 || len(batch) > vlength {
				t.Errorf("batch size %d with vlength %d", len(batch), vlength)
			}
			for _, idx := range batch {
				atomic.AddInt32(&counts[idx[0]*N+idx[1]], 1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int32
		for _, c := range counts {
			total += c
			if c > 1 {
				t.Fatalf("vlength %d: duplicated iteration", vlength)
			}
		}
		if want := int32((N - 1) * N / 2); total != want {
			t.Fatalf("vlength %d: total %d, want %d", vlength, total, want)
		}
	}
}

func TestCollapsedForWarp(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 22}
	N := params["N"]
	for _, W := range []int{1, 2, 8, 32} {
		counts := make([]int32, N*N)
		seenPC := make([]int32, (N-1)*N/2+1)
		err := CollapsedForWarp(r, params, W, func(lane int, pc int64, idx []int64) {
			atomic.AddInt32(&counts[idx[0]*N+idx[1]], 1)
			atomic.AddInt32(&seenPC[pc], 1)
			// Lane affinity: pc ≡ lane+1 (mod W).
			if (pc-1)%int64(W) != int64(lane) {
				t.Errorf("W=%d: lane %d executed pc %d", W, lane, pc)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int32
		for _, c := range counts {
			total += c
			if c > 1 {
				t.Fatalf("W=%d: duplicated iteration", W)
			}
		}
		if want := int32((N - 1) * N / 2); total != want {
			t.Fatalf("W=%d: total %d, want %d", W, total, want)
		}
		for pc := 1; pc < len(seenPC); pc++ {
			if seenPC[pc] != 1 {
				t.Fatalf("W=%d: pc %d executed %d times", W, pc, seenPC[pc])
			}
		}
	}
}

func TestEmptySpace(t *testing.T) {
	r := correlationResult()
	params := map[string]int64{"N": 1} // (N-1)N/2 = 0
	called := false
	if err := CollapsedFor(r, params, 4, Schedule{Kind: Static}, func(int, []int64) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("body called on empty space")
	}
	if err := CollapsedForSIMD(r, params, 2, 4, func(int, [][]int64) { called = true }); err != nil {
		t.Fatal(err)
	}
	if err := CollapsedForWarp(r, params, 4, func(int, int64, []int64) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("body called on empty space (simd/warp)")
	}
}
