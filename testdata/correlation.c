#pragma omp parallel for private(j, k) collapse(2) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++) {
    for (k = 0; k < N; k++)
      a[i][j] += b[k][i] * c[k][j];
    a[j][i] = a[i][j];
  }
