// Package autotune picks the (schedule, chunk, workers) triple for a
// collapsed loop nest by simulation against a measured cost model
// instead of live trial runs.
//
// The planner builds a work vector for the nest — exact per-unit inner
// trip counts from the Ehrhart count polynomial of the non-collapsed
// sub-nest, compressed to a bounded number of cells — calibrates the
// §V recovery and dynamic-dequeue overheads on first contact (replaced
// by the live omp.recovery_seconds histogram p50 once real runs have
// been observed), and scores every candidate triple with the
// internal/schedsim engine under a multi-objective fitness (makespan,
// p99 latency under the configured arrival process, imbalance).
//
// Decisions are cached in the CollapseCache plan side-table keyed by
// NestSignature × params bucket × core count, so a plan invalidates
// implicitly when the problem size leaves its bucket or GOMAXPROCS
// changes. Observed makespans feed back: when a run deviates more than
// ReplanDeviation from the prediction, the per-unit cost estimate is
// rescaled and the triple re-planned — self-tuning hot nests converge
// to their measured behaviour without ever running probe bodies (the
// tuned path visits exactly the multiset of iterations the static path
// does; only scheduling changes).
package autotune

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/schedsim"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// Decision is the planner's chosen execution triple plus its simulated
// expectation, so callers can print predicted-vs-actual.
type Decision struct {
	Schedule     omp.Schedule // concrete kind (never ScheduleAuto) + chunk
	Workers      int          // team size
	PredictedSec float64      // simulated makespan of the chosen triple
	Score        float64      // fitness (lower is better) under the Objective
}

// String renders the triple the way the CLI -sched flag spells it.
func (d Decision) String() string {
	return fmt.Sprintf("%s x%d", scheduleSpec(d.Schedule), d.Workers)
}

// scheduleSpec renders an omp.Schedule in -sched grammar.
func scheduleSpec(s omp.Schedule) string {
	if s.Chunk > 0 {
		return fmt.Sprintf("%s,%d", s.Kind, s.Chunk)
	}
	return s.Kind.String()
}

// Plan is one cached planning outcome: the decision, the calibration
// and work model it was derived from (kept so online refinement can
// re-simulate without re-binding the nest), and the per-unit cost
// estimate in effect. Plans are immutable — refinement stores a new
// Plan in the cache rather than mutating a shared one.
type Plan struct {
	Key      string
	Decision Decision
	Cal      Calibration
	UnitSec  float64 // estimated seconds per work unit (one inner iteration)

	model   workModel
	replans int // generations of refinement behind this plan
}

// Replans reports how many refinement generations produced this plan
// (0 for a first-contact plan).
func (p *Plan) Replans() int { return p.replans }

// Workload describes the request stream the planner optimizes for.
// The zero value means single-shot: one request, pure makespan.
type Workload struct {
	Arrivals schedsim.Arrivals
	Requests int
}

// Options configures a Tuner. The zero value works: plans are cached
// in a private cache, telemetry is dropped, workers default to
// GOMAXPROCS, and the objective to schedsim.DefaultObjective.
type Options struct {
	// Registry receives autotune.plans / autotune.replans /
	// autotune.cache_hits counters and is consulted for the measured
	// omp.recovery_seconds histogram. Nil drops telemetry.
	Registry *telemetry.Registry
	// Cache stores plans alongside compiled artifacts. Nil allocates a
	// private cache.
	Cache *core.CollapseCache
	// MaxWorkers caps the candidate team sizes. <=0 means GOMAXPROCS.
	MaxWorkers int
	// MaxUnits bounds the compressed work vector. <=0 means 4096 cells.
	MaxUnits int
	// Objective weights the fitness terms. Zero value means
	// schedsim.DefaultObjective.
	Objective schedsim.Objective
	// Workload is the arrival process candidates are scored under.
	// Zero value means single-shot.
	Workload Workload
	// ReplanDeviation is the relative |actual-predicted|/predicted above
	// which Observe refines the plan. <=0 means 0.25.
	ReplanDeviation float64
	// UnitSec seeds the per-unit cost before any observation. <=0 means
	// 50ns (a handful of arithmetic ops per innermost iteration).
	UnitSec float64
}

func (o Options) fill() Options {
	if o.Cache == nil {
		o.Cache = core.NewCollapseCache(0)
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if o.MaxUnits <= 0 {
		o.MaxUnits = 4096
	}
	o.Objective = o.Objective.Normalized()
	if o.Workload.Requests < 1 {
		o.Workload.Requests = 1
	}
	if o.ReplanDeviation <= 0 {
		o.ReplanDeviation = 0.25
	}
	if o.UnitSec <= 0 {
		o.UnitSec = 50e-9
	}
	return o
}

// Tuner plans and refines schedules. Safe for concurrent use.
type Tuner struct {
	opts Options

	dequeueOnce sync.Once
	dequeueSec  float64
}

// New returns a Tuner with opts' defaults filled in.
func New(opts Options) *Tuner {
	return &Tuner{opts: opts.fill()}
}

// Cache exposes the plan/artifact cache the tuner stores decisions in.
func (t *Tuner) Cache() *core.CollapseCache { return t.opts.Cache }

// planKey derives the cache key: the structural NestSignature extended
// with the log2 bucket of every parameter value and the core count.
// Bucketing means nearby problem sizes share a plan while order-of-
// magnitude changes (or a GOMAXPROCS change) re-plan.
func planKey(res *core.Result, params map[string]int64, cores int) string {
	// The decision depends on the nest shape and the work profile, not on
	// the compile options the artifact was built with, so the signature is
	// taken at default options. It is taken at FULL depth — not res.C —
	// because NestSignature only renders the collapsed prefix, and two
	// nests sharing a prefix but differing in inner loops (syrk vs ltmp)
	// have different work profiles and must not share a plan; the actual
	// collapse count is appended separately. Non-canonicalizable nests
	// still plan, keyed on the raw shape dimensions.
	sig, ok := core.NestSignature(res.Nest, len(res.Nest.Loops), unrank.Options{})
	if !ok {
		sig = fmt.Sprintf("raw|np=%d|d=%d", len(res.Nest.Params), len(res.Nest.Loops))
	}
	sig = fmt.Sprintf("%s|collapse=%d", sig, res.C)
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(sig)
	for _, name := range names {
		v := params[name]
		bucket := -1 // bucket for v <= 0
		if v > 0 {
			bucket = int(math.Round(math.Log2(float64(v))))
		}
		fmt.Fprintf(&sb, "|%s~%d", name, bucket)
	}
	fmt.Fprintf(&sb, "|cores=%d", cores)
	return sb.String()
}

// Plan returns the cached plan for (res, params) or computes, caches
// and returns a fresh one. cached reports whether the plan was served
// from the cache.
func (t *Tuner) Plan(res *core.Result, params map[string]int64) (plan *Plan, cached bool, err error) {
	cores := runtime.GOMAXPROCS(0)
	key := planKey(res, params, cores)
	if v, ok := t.opts.Cache.GetPlan(key); ok {
		t.opts.Registry.Counter("autotune.cache_hits").Add(1)
		return v.(*Plan), true, nil
	}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return nil, false, err
	}
	model := buildWorkModel(res, b, params, t.opts.MaxUnits)
	cal := t.calibrate(b, res.C, model.total)
	plan = t.plan(key, model, cal, t.opts.UnitSec, 0)
	t.opts.Cache.PutPlan(key, plan)
	t.opts.Registry.Counter("autotune.plans").Add(1)
	return plan, false, nil
}

// calibrate assembles the cost model for one plan: the per-process
// dequeue constant plus the recovery cost — live histogram p50 when
// the nest has run enough, else sampled from the bound's own unranker.
func (t *Tuner) calibrate(b *unrank.Bound, c int, total int64) Calibration {
	t.dequeueOnce.Do(func() { t.dequeueSec = measureDequeue() })
	cal := Calibration{Dequeue: t.dequeueSec}
	if p50, ok := recoveryP50(t.opts.Registry); ok {
		cal.Recovery = p50
		cal.RecoveryMeasured = true
		return cal
	}
	cal.Recovery = measureRecovery(b, c, total)
	return cal
}

// plan enumerates candidates and scores each by simulation, returning
// the winner as an immutable Plan.
func (t *Tuner) plan(key string, model workModel, cal Calibration, unitSec float64, replans int) *Plan {
	best := Decision{Schedule: omp.Schedule{Kind: omp.Guided, Chunk: 1}, Workers: t.opts.MaxWorkers}
	bestScore := math.Inf(1)
	// Work in seconds: scale the unit vector once per plan.
	workSec := make([]float64, len(model.work))
	for i, w := range model.work {
		workSec[i] = w * unitSec
	}
	for _, workers := range candidateWorkers(t.opts.MaxWorkers) {
		for _, pol := range candidatePolicies(model.total, workers) {
			ms, score := t.score(workSec, model, cal, workers, pol)
			if score < bestScore {
				bestScore = score
				best = Decision{
					Schedule:     policySchedule(pol),
					Workers:      workers,
					PredictedSec: ms,
					Score:        score,
				}
			}
		}
	}
	return &Plan{
		Key:      key,
		Decision: best,
		Cal:      cal,
		UnitSec:  unitSec,
		model:    model,
		replans:  replans,
	}
}

// score simulates one candidate triple over the configured workload.
// Chunks are expressed in pcs but the work vector is in cells of G pcs,
// so the chunk and the per-chunk overhead are rescaled to cell space:
// cellChunk = max(1, chunk/G) cells, and the overhead per simulated
// cell-chunk is scaled by cellChunk*G/chunk so the total overhead
// charged across the run is preserved.
func (t *Tuner) score(workSec []float64, model workModel, cal Calibration, workers int, pol schedsim.Policy) (makespanSec, score float64) {
	g := model.cellPCs
	if g < 1 {
		g = 1
	}
	chunk := float64(pol.Chunk)
	if chunk <= 0 {
		chunk = defaultChunkPCs(pol, model.total, workers)
	}
	cellChunk := math.Max(1, math.Floor(chunk/g))
	overheadScale := cellChunk * g / chunk
	cm := schedsim.CostModel{
		PerChunk:   cal.Recovery * overheadScale,
		PerDequeue: cal.Dequeue * overheadScale,
	}
	cellPol := schedsim.Policy{Kind: pol.Kind, Chunk: int(cellChunk)}
	if pol.Kind == schedsim.PolicyStatic {
		cellPol.Chunk = 0
		cm.PerChunk = cal.Recovery // one recovery per contiguous block
		cm.PerDequeue = 0
	}

	if t.opts.Workload.Requests <= 1 {
		ms, loads := schedsim.Simulate(workSec, workers, cellPol, cm)
		imb := schedsim.Imbalance(loads)
		obj := t.opts.Objective
		score = obj.WMakespan*ms*1e3 + obj.WP99*ms*1e3 + obj.WImbalance*math.Max(0, imb-1)*ms*1e3
		return ms, score
	}

	// Trace-based scoring: replay the arrival process against copies of
	// this work vector (all requests share the shape; mixed-shape traces
	// are the experiment suite's domain, not the per-nest planner's).
	tr := schedsim.GenTrace(schedsim.TraceOptions{
		Arrivals: t.opts.Workload.Arrivals,
		Requests: t.opts.Workload.Requests,
		Shapes:   []schedsim.Shape{{Name: "nest", Work: workSec, Weight: 1}},
		Seed:     1,
	})
	resTr := schedsim.SimulateTrace(tr, workers, cellPol, cm)
	score = t.opts.Objective.Score(resTr)
	return resTr.MeanMakespan(), score
}

// defaultChunkPCs mirrors omp's implicit chunking so simulation charges
// overheads at the granularity the runtime will actually use.
func defaultChunkPCs(pol schedsim.Policy, total int64, workers int) float64 {
	switch pol.Kind {
	case schedsim.PolicyDynamic:
		return 1
	case schedsim.PolicyGuided:
		c := float64(total) / float64(2*workers)
		if c < 1 {
			c = 1
		}
		return c
	default:
		c := float64(total) / float64(workers)
		if c < 1 {
			c = 1
		}
		return c
	}
}

// policySchedule converts a simulator policy back to the runtime kind.
func policySchedule(pol schedsim.Policy) omp.Schedule {
	switch pol.Kind {
	case schedsim.PolicyStatic:
		return omp.Schedule{Kind: omp.Static}
	case schedsim.PolicyStaticChunk:
		return omp.Schedule{Kind: omp.StaticChunk, Chunk: int64(pol.Chunk)}
	case schedsim.PolicyDynamic:
		return omp.Schedule{Kind: omp.Dynamic, Chunk: int64(pol.Chunk)}
	default:
		return omp.Schedule{Kind: omp.Guided, Chunk: int64(pol.Chunk)}
	}
}

// candidateWorkers enumerates team sizes: max, halvings of max, and 1.
func candidateWorkers(max int) []int {
	var out []int
	seen := map[int]bool{}
	for w := max; w >= 1; w /= 2 {
		if !seen[w] {
			out = append(out, w)
			seen[w] = true
		}
	}
	if !seen[1] {
		out = append(out, 1)
	}
	return out
}

// candidateChunks are the chunk sizes tried for chunked policies,
// pruned to at most total/workers (a bigger chunk degenerates to
// static).
var candidateChunks = []int{1, 16, 64, 256, 1024, 4096}

// candidatePolicies enumerates the simulator policies scored per team
// size.
func candidatePolicies(total int64, workers int) []schedsim.Policy {
	limit := int(total / int64(workers))
	if limit < 1 {
		limit = 1
	}
	out := []schedsim.Policy{
		{Kind: schedsim.PolicyStatic},
		{Kind: schedsim.PolicyGuided, Chunk: 1},
		{Kind: schedsim.PolicyGuided, Chunk: 64},
	}
	for _, c := range candidateChunks {
		if c > limit && c != 1 {
			continue
		}
		out = append(out,
			schedsim.Policy{Kind: schedsim.PolicyStaticChunk, Chunk: c},
			schedsim.Policy{Kind: schedsim.PolicyDynamic, Chunk: c},
		)
	}
	return out
}

// Observe feeds an actual measured makespan back into the tuner. When
// the observation deviates from the plan's prediction by more than
// ReplanDeviation (and exceeds a noise floor), the per-unit cost is
// rescaled by actual/predicted, the candidates re-simulated against
// the stored work model, and the refreshed plan cached. Returns the
// plan now in effect and whether a re-plan happened.
func (t *Tuner) Observe(plan *Plan, actualSec float64) (*Plan, bool) {
	const noiseFloorSec = 100e-6
	if plan == nil || actualSec <= 0 {
		return plan, false
	}
	pred := plan.Decision.PredictedSec
	if pred <= 0 {
		return plan, false
	}
	dev := math.Abs(actualSec-pred) / pred
	if dev <= t.opts.ReplanDeviation || math.Abs(actualSec-pred) < noiseFloorSec {
		return plan, false
	}
	// The simulated makespan is (work + overhead); attribute the full
	// deviation to the unit cost — overheads are measured, work is the
	// estimate being corrected.
	unit := plan.UnitSec * actualSec / pred
	if unit <= 0 || math.IsNaN(unit) || math.IsInf(unit, 0) {
		return plan, false
	}
	cal := plan.Cal
	if p50, ok := recoveryP50(t.opts.Registry); ok {
		cal.Recovery = p50
		cal.RecoveryMeasured = true
	}
	next := t.plan(plan.Key, plan.model, cal, unit, plan.replans+1)
	t.opts.Cache.PutPlan(plan.Key, next)
	t.opts.Registry.Counter("autotune.replans").Add(1)
	return next, true
}

// Run is one tuned execution: a Result run through the planner's chosen
// triple, so callers never pick a schedule by hand.
type Run struct {
	Plan      *Plan
	Cached    bool          // plan served from the cache (no planning cost)
	Replanned bool          // this run's observation triggered refinement
	Actual    time.Duration // measured wall time of the parallel region
	Stats     omp.CollapsedStats
}

// PredictedSec returns the makespan the plan promised for this run.
func (r Run) PredictedSec() float64 { return r.Plan.Decision.PredictedSec }

// CollapsedFor plans (or recalls) the schedule for (res, params), runs
// body over every collapsed iteration under the chosen triple, measures
// the actual makespan, and feeds it back for online refinement. The
// visited iteration multiset is identical to any static schedule —
// only the order and the thread assignment differ.
func (t *Tuner) CollapsedFor(ctx context.Context, res *core.Result, params map[string]int64,
	body func(tid int, idx []int64)) (Run, error) {
	plan, cached, err := t.Plan(res, params)
	if err != nil {
		return Run{}, err
	}
	d := plan.Decision
	start := time.Now()
	// Chunk-granularity instrumentation: recovery histogram, live gauges
	// and counters still feed the cost model, but the body loop runs at
	// CollapsedFor speed so the measured makespan is not skewed by
	// per-iteration clock reads.
	cs, err := omp.CollapsedForChunkTelemetryCtx(ctx, res, params, d.Workers, d.Schedule, t.opts.Registry, body)
	actual := time.Since(start)
	if err != nil {
		return Run{Plan: plan, Cached: cached, Actual: actual}, err
	}
	next, replanned := t.Observe(plan, actual.Seconds())
	return Run{Plan: next, Cached: cached, Replanned: replanned, Actual: actual, Stats: cs}, nil
}
