// Package serve is the collapse-as-a-service layer: a hardened HTTP/JSON
// daemon over the collapsing library. It accepts loop nests — either as
// mini-C fragments (the collapsetool front end) or as structured JSON —
// and answers compile/count/rank/unrank/codegen/execute queries, compiling
// through a process-wide CollapseCache and executing on the
// bind-once/clone-per-worker engine.
//
// The robustness core is the request lifecycle manager documented in
// DESIGN.md: token-bucket admission control (429 + Retry-After hints
// derived from the refill state), a bounded concurrent-request semaphore,
// per-request deadlines propagated into the context-aware runtime,
// per-request panic isolation onto the internal/faults taxonomy, a
// compile-failure circuit breaker keyed by core.NestSignature, and
// graceful degradation tiers under load (shed codegen first, then force
// the uncollapsed fallback, then shed). Graceful shutdown drains in-flight
// requests via http.Server.Shutdown.
package serve

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cparse"
	"repro/internal/nest"
	"repro/internal/poly"
)

// LoopSpec is one loop level of a structured nest request. Bounds are
// affine expressions over outer iterators and free parameters
// (lower <= index < upper, upper exclusive).
type LoopSpec struct {
	Index string `json:"index"`
	Lower string `json:"lower"`
	Upper string `json:"upper"`
}

// NestSpec is a structured loop nest. When Params is empty, the free
// identifiers of the bound expressions become the parameters (sorted),
// matching the rankq front end.
type NestSpec struct {
	Params []string   `json:"params,omitempty"`
	Loops  []LoopSpec `json:"loops"`
}

// Request is the JSON body accepted by every /v1 endpoint. A nest is
// given either as mini-C source with an OpenMP collapse pragma (Src) or
// structured (Nest); exactly one must be present. The remaining fields
// parameterize the individual operations and are ignored where they do
// not apply.
type Request struct {
	// Src is a mini-C fragment with "#pragma omp ... collapse(c)".
	Src string `json:"src,omitempty"`
	// Nest is the structured alternative to Src.
	Nest *NestSpec `json:"nest,omitempty"`
	// Collapse is the number of outermost loops to collapse. Default:
	// the pragma's collapse count for Src, the full depth for Nest.
	Collapse int `json:"collapse,omitempty"`
	// Params binds size parameters for count/rank/unrank/execute.
	Params map[string]int64 `json:"params,omitempty"`

	// Index is the iteration tuple for rank (length = nest depth).
	Index []int64 `json:"index,omitempty"`
	// Pc is the 1-based collapsed rank for unrank.
	Pc int64 `json:"pc,omitempty"`

	// Scheme selects the codegen recovery scheme
	// (per-iteration|first-iteration|chunked|simd|warp) and Language the
	// output language ("c" default, "go").
	Scheme   string `json:"scheme,omitempty"`
	Language string `json:"language,omitempty"`
	Chunk    int    `json:"chunk,omitempty"`
	VLength  int    `json:"vlength,omitempty"`
	Warp     int    `json:"warp,omitempty"`

	// Threads and Schedule shape the execute run ("static",
	// "dynamic,16", ...). Threads defaults to the server's team size.
	Threads  int    `json:"threads,omitempty"`
	Schedule string `json:"schedule,omitempty"`
	// Shards > 0 selects the fault-tolerant sharded execute engine
	// (internal/dist): the collapsed pc-range is split into this many
	// shards executed under leases, a worker panic costs one shard
	// attempt (retried) instead of the request, and the answer carries
	// the recovery ledger. Ignored when the nest is not collapsible or
	// the server is in the force-fallback degradation tier.
	Shards int `json:"shards,omitempty"`
}

// CompileResponse answers /v1/compile.
type CompileResponse struct {
	Collapse int      `json:"collapse"`
	Ranking  string   `json:"ranking"`
	Total    string   `json:"total"`
	Roots    []string `json:"roots,omitempty"`
	// Cached reports whether the artifact came from the process-wide
	// collapse cache.
	Cached bool `json:"cached"`
}

// CountResponse answers /v1/count. Total is 0 with TotalBig carrying the
// exact decimal count when it exceeds int64 (the daemon still answers —
// only unranking needs the pc range to fit).
type CountResponse struct {
	Total    int64  `json:"total"`
	TotalBig string `json:"total_big,omitempty"`
}

// RankResponse answers /v1/rank.
type RankResponse struct {
	Pc int64 `json:"pc"`
}

// UnrankResponse answers /v1/unrank.
type UnrankResponse struct {
	Index []int64 `json:"index"`
}

// CodegenResponse answers /v1/codegen.
type CodegenResponse struct {
	Language string `json:"language"`
	Code     string `json:"code"`
}

// ExecuteResponse answers /v1/execute: the nest ran to completion on the
// parallel runtime with a checksumming body, so correctness is externally
// verifiable (Checksum is the order-independent sum of tuple hashes).
type ExecuteResponse struct {
	Iterations int64  `json:"iterations"`
	Checksum   uint64 `json:"checksum"`
	// Collapsed reports which engine ran: the collapsed schedule or the
	// uncollapsed outer-loop fallback (inapplicable nest, or the server
	// forced the fallback under load — see Degraded).
	Collapsed bool `json:"collapsed"`
	// Degraded is true when the overload ladder forced the fallback.
	Degraded bool `json:"degraded"`
	Threads  int  `json:"threads"`

	// Sharded reports the run used the fault-tolerant shard coordinator
	// (Request.Shards > 0 on a collapsible nest); Shards is the planned
	// shard count and the remaining fields its recovery ledger — shard
	// attempts retried after failures (including isolated worker
	// panics), leases expired and reassigned, and duplicate completions
	// dropped by the exactly-once commit protocol.
	Sharded         bool  `json:"sharded,omitempty"`
	Shards          int   `json:"shards,omitempty"`
	ShardRetries    int64 `json:"shard_retries,omitempty"`
	LeaseExpiries   int64 `json:"lease_expiries,omitempty"`
	DuplicateShards int64 `json:"duplicate_shards,omitempty"`

	// Tuned reports the request ran under schedule "auto": the server's
	// autotuner picked Schedule (rendered as a -sched spec plus team
	// size), predicted PredictedMs by simulation against the measured
	// cost model, and measured ActualMs; Threads is the chosen team size.
	Tuned       bool    `json:"tuned,omitempty"`
	Schedule    string  `json:"schedule,omitempty"`
	PredictedMs float64 `json:"predicted_ms,omitempty"`
	ActualMs    float64 `json:"actual_ms,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Class is the machine-readable failure class (the faults taxonomy
	// plus the service-level classes): bad_request, non_affine,
	// degree_too_high, overflow, no_convenient_root, recovery_diverged,
	// deadline_exceeded, canceled, panic, overloaded, breaker_open,
	// shutting_down, internal.
	Class string `json:"class"`
	// RetryAfterS echoes the Retry-After hint in seconds for 429/503
	// answers, so JSON-only clients need not parse headers.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// buildNest materializes the request's nest and collapse count.
func buildNest(req *Request) (*nest.Nest, int, error) {
	switch {
	case req.Src != "" && req.Nest != nil:
		return nil, 0, fmt.Errorf("give src or nest, not both")
	case req.Src != "":
		prog, err := cparse.Parse(req.Src)
		if err != nil {
			return nil, 0, err
		}
		c := prog.CollapseCount
		if req.Collapse != 0 {
			c = req.Collapse
		}
		if c < 1 || c > prog.Nest.Depth() {
			return nil, 0, fmt.Errorf("collapse %d out of range [1,%d]", c, prog.Nest.Depth())
		}
		return prog.Nest, c, nil
	case req.Nest != nil:
		n, err := buildStructured(req.Nest)
		if err != nil {
			return nil, 0, err
		}
		c := n.Depth()
		if req.Collapse != 0 {
			c = req.Collapse
		}
		if c < 1 || c > n.Depth() {
			return nil, 0, fmt.Errorf("collapse %d out of range [1,%d]", c, n.Depth())
		}
		return n, c, nil
	default:
		return nil, 0, fmt.Errorf("missing nest: give src or nest")
	}
}

// buildStructured validates a NestSpec into a nest, inferring parameters
// from free identifiers when the spec leaves them out.
func buildStructured(spec *NestSpec) (*nest.Nest, error) {
	if len(spec.Loops) == 0 {
		return nil, fmt.Errorf("nest has no loops")
	}
	loops := make([]nest.Loop, 0, len(spec.Loops))
	indexSet := map[string]bool{}
	for _, ls := range spec.Loops {
		idx := strings.TrimSpace(ls.Index)
		if idx == "" {
			return nil, fmt.Errorf("loop with empty index")
		}
		lo, err := poly.Parse(ls.Lower)
		if err != nil {
			return nil, fmt.Errorf("loop %s lower %q: %w", idx, ls.Lower, err)
		}
		hi, err := poly.Parse(ls.Upper)
		if err != nil {
			return nil, fmt.Errorf("loop %s upper %q: %w", idx, ls.Upper, err)
		}
		loops = append(loops, nest.Loop{Index: idx, Lower: lo, Upper: hi})
		indexSet[idx] = true
	}
	params := spec.Params
	if len(params) == 0 {
		pset := map[string]bool{}
		for _, l := range loops {
			for _, v := range append(l.Lower.Vars(), l.Upper.Vars()...) {
				if !indexSet[v] {
					pset[v] = true
				}
			}
		}
		for p := range pset {
			params = append(params, p)
		}
		sort.Strings(params)
	}
	return nest.New(params, loops...)
}
