// A time-stepped solver pattern: a sequential outer time loop whose body
// is a collapsed non-rectangular parallel sweep, executed on a
// persistent worker team (the fork/join reuse pattern of OpenMP runtime
// threads). Demonstrates Team + repeated CollapsedFor-style regions, and
// CollapseAt for collapsing an inner loop band.
//
//	go run ./examples/timestep [-N 400] [-steps 50] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	nonrect "repro"
	"repro/internal/unrank"
)

func main() {
	N := flag.Int64("N", 400, "triangle size")
	steps := flag.Int("steps", 50, "time steps")
	threads := flag.Int("threads", 8, "team size")
	flag.Parse()

	// Per time step, update every cell (i, j) of a lower-triangular grid
	// from the previous step's values (Jacobi-style, so all (i, j) are
	// independent within a step).
	n := nonrect.MustNewNest([]string{"N"},
		nonrect.L("i", "0", "N"),
		nonrect.L("j", "0", "i+1"),
	)
	res, err := nonrect.Collapse(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]int64{"N": *N}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		log.Fatal(err)
	}
	total := b.Total()
	fmt.Printf("triangular grid: %d cells, %d steps, %d workers\n", total, *steps, *threads)

	// Triangular storage in rank order (§III memory-layout application):
	// cell (i, j) lives at rank-1 = i(i+1)/2 + j.
	cur := make([]float64, total)
	nxt := make([]float64, total)
	for x := range cur {
		cur[x] = float64(x%17) * 0.25
	}
	at := func(grid []float64, i, j int64) float64 {
		if i < 0 || j < 0 || j > i || i >= *N {
			return 0
		}
		return grid[i*(i+1)/2+j]
	}

	team := nonrect.NewTeam(*threads)
	defer team.Close()

	// One Bound per worker, reused across all time steps.
	bounds := make([]*unrank.Bound, *threads)
	for t := range bounds {
		bb, err := res.Unranker.Bind(params)
		if err != nil {
			log.Fatal(err)
		}
		bounds[t] = bb
	}

	start := time.Now()
	for s := 0; s < *steps; s++ {
		src, dst := cur, nxt
		team.ParallelForChunks(1, total+1, nonrect.Schedule{Kind: nonrect.Static},
			func(tid int, clo, chi int64) {
				idx := make([]int64, 2)
				if err := bounds[tid].Unrank(clo, idx); err != nil {
					panic(err)
				}
				for pc := clo; pc < chi; pc++ {
					i, j := idx[0], idx[1]
					dst[pc-1] = 0.25 * (at(src, i, j) + at(src, i-1, j) +
						at(src, i+1, j) + at(src, i, j-1))
					if pc+1 < chi {
						bounds[tid].Increment(idx)
					}
				}
			})
		cur, nxt = nxt, cur
	}
	elapsed := time.Since(start)

	var sum float64
	for _, v := range cur {
		sum += v
	}
	fmt.Printf("finished %d steps in %v (%.1f Mcell-updates/s); field sum %.6f\n",
		*steps, elapsed.Round(time.Millisecond),
		float64(total)*float64(*steps)/elapsed.Seconds()/1e6, sum)

	// Verify against a sequential reference run.
	ref := make([]float64, total)
	tmp := make([]float64, total)
	for x := range ref {
		ref[x] = float64(x%17) * 0.25
	}
	for s := 0; s < *steps; s++ {
		var pc int64
		for i := int64(0); i < *N; i++ {
			for j := int64(0); j <= i; j++ {
				tmp[pc] = 0.25 * (at(ref, i, j) + at(ref, i-1, j) +
					at(ref, i+1, j) + at(ref, i, j-1))
				pc++
			}
		}
		ref, tmp = tmp, ref
	}
	match := true
	for x := range ref {
		if ref[x] != cur[x] {
			match = false
			break
		}
	}
	fmt.Println("bitwise match with sequential reference:", match)

	// Bonus: CollapseAt — collapse only the inner (j, k) band of a
	// 3-deep nest, with i as a symbolic parameter of the ranking.
	deep := nonrect.MustNewNest([]string{"N"},
		nonrect.L("i", "0", "N"),
		nonrect.L("j", "i", "N"),
		nonrect.L("k", "j", "N"),
	)
	band, err := nonrect.CollapseAt(deep, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCollapseAt(1,2) of {i; j=i..N; k=j..N}: ranking over params %v:\n  r = %s\n",
		band.SubNest.Params, band.Ranking)
	bb, err := band.Unranker.Bind(map[string]int64{"N": 10, "i": 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for i=4, N=10 the band has %d (j,k) pairs\n", bb.Total())
}
