package omp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// CollapsedFor executes the collapsed iteration space of r (pc =
// 1..Total) in parallel. Within each schedule chunk the §V scheme is
// used: the costly closed-form recovery runs once at the first iteration
// of the chunk, and subsequent index tuples come from lexicographic
// incrementation, mirroring the code of paper Figs. 4 and §V.
//
// Each worker owns a private unrank.Bound (the OpenMP codes privatize the
// recovery state the same way). body must be safe for concurrent
// invocation on distinct iterations; the idx slice is reused per worker.
func CollapsedFor(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) error {
	return collapsedRun(nil, r, params, threads, sched, body, false)
}

// CollapsedForCtx is CollapsedFor with cooperative cancellation: ctx is
// checked at every chunk boundary (never inside a chunk, so the §V
// recovery/incrementation fast path is untouched), and a canceled
// context stops the team with an error wrapping faults.ErrCanceled. A
// panic in body is captured with its stack and returned as a
// *faults.PanicError; the process survives and the team drains cleanly.
func CollapsedForCtx(ctx context.Context, r *core.Result, params map[string]int64,
	threads int, sched Schedule, body func(tid int, idx []int64)) error {
	return collapsedRun(ctx, r, params, threads, sched, body, false)
}

// CollapsedForEvery is CollapsedFor with the recovery performed at every
// iteration (no incrementation) — the maximum-cost mode the paper
// associates with dynamic scheduling of collapsed loops (§V).
func CollapsedForEvery(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) error {
	return collapsedRun(nil, r, params, threads, sched, body, true)
}

// pcEnd returns the exclusive upper bound total+1 of the collapsed pc
// range [1, total], refusing totals whose +1 would wrap. Bind already
// rejects counts beyond int64, but the int64 fast path can legitimately
// produce math.MaxInt64 itself.
func pcEnd(total int64) (int64, error) {
	if total >= math.MaxInt64 {
		return 0, fmt.Errorf("omp: collapsed total %d overflows the pc range: %w",
			total, faults.ErrOverflow)
	}
	return total + 1, nil
}

// bindTeam privatizes recovery state for a team: the collapse result is
// bound once (paying bound compilation and the count-polynomial
// evaluation a single time), then each additional worker receives a
// Clone sharing the immutable compiled core with only its own mutable
// scratch.
func bindTeam(r *core.Result, params map[string]int64, threads int) ([]*unrank.Bound, error) {
	b0, err := r.Unranker.Bind(params)
	if err != nil {
		return nil, err
	}
	bounds := make([]*unrank.Bound, threads)
	bounds[0] = b0
	for t := 1; t < threads; t++ {
		bounds[t] = b0.Clone()
	}
	return bounds, nil
}

func collapsedRun(ctx context.Context, r *core.Result, params map[string]int64, threads int,
	sched Schedule, body func(tid int, idx []int64), every bool) error {
	if threads < 1 {
		threads = 1
	}
	bounds, err := bindTeam(r, params, threads)
	if err != nil {
		return err
	}
	total := bounds[0].Total()
	if total == 0 {
		return nil
	}
	end, err := pcEnd(total)
	if err != nil {
		return err
	}
	return ParallelForChunksCtx(ctx, threads, 1, end, sched, func(tid int, clo, chi int64) error {
		b := bounds[tid]
		run := core.ForRange
		if every {
			run = core.ForRangeEvery
		}
		return run(b, clo, chi-1, func(pc int64, idx []int64) {
			body(tid, idx)
		})
	})
}

// CollapsedForRanges executes the collapsed space with the range-batched
// §V engine: each chunk performs one costly recovery, then the body
// receives maximal flat innermost runs instead of single iterations.
// body(tid, pc, prefix, lo, hi) covers collapsed ranks
// pc .. pc+(hi-lo)-1, whose tuples share the outer prefix (levels
// 0..C-2; slice reused per worker, do not retain) and take every
// innermost value lo <= i < hi — so the caller's innermost loop is a
// plain counted `for i := lo; i < hi; i++`, with bounds re-evaluated
// only on outer-level carries. Runs never cross chunk boundaries, so pc
// accounting (and therefore scheduling) is exactly that of CollapsedFor.
func CollapsedForRanges(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, pc int64, prefix []int64, lo, hi int64)) error {
	_, err := collapsedRangesRun(nil, r, params, threads, sched, nil, body)
	return err
}

// CollapsedForRangesCtx is CollapsedForRanges with cooperative
// cancellation checked at chunk boundaries (never inside a run).
func CollapsedForRangesCtx(ctx context.Context, r *core.Result, params map[string]int64,
	threads int, sched Schedule, body func(tid int, pc int64, prefix []int64, lo, hi int64)) error {
	_, err := collapsedRangesRun(ctx, r, params, threads, sched, nil, body)
	return err
}

// CollapsedForRangesStats is CollapsedForRanges returning the engine's
// aggregated counters (runs, carries, iterations) and publishing them on
// tel (which may be nil): "omp.range_batches", "omp.range_carries" and
// "omp.iterations". The counters make the engine's economy observable:
// batches ≈ carries + threads·chunks, and iterations/batches is the mean
// flat-run length the body enjoyed.
func CollapsedForRangesStats(r *core.Result, params map[string]int64, threads int, sched Schedule,
	tel *telemetry.Registry, body func(tid int, pc int64, prefix []int64, lo, hi int64)) (core.RangeStats, error) {
	return collapsedRangesRun(nil, r, params, threads, sched, tel, body)
}

func collapsedRangesRun(ctx context.Context, r *core.Result, params map[string]int64, threads int,
	sched Schedule, tel *telemetry.Registry,
	body func(tid int, pc int64, prefix []int64, lo, hi int64)) (core.RangeStats, error) {
	var agg core.RangeStats
	if threads < 1 {
		threads = 1
	}
	bounds, err := bindTeam(r, params, threads)
	if err != nil {
		return agg, err
	}
	total := bounds[0].Total()
	if total == 0 {
		return agg, nil
	}
	end, err := pcEnd(total)
	if err != nil {
		return agg, err
	}
	stats := make([]core.RangeStats, threads)
	live := newLiveTeam(tel, threads, sched.Kind)
	tr := tel.Trace()
	published := make([]unrank.Stats, threads)
	runErr := ParallelForChunksCtx(ctx, threads, 1, end, sched, func(tid int, clo, chi int64) error {
		if live == nil {
			// Uninstrumented hot path: no clock reads, no stats copies.
			return core.ForRanges(bounds[tid], clo, chi-1, &stats[tid],
				func(pc int64, prefix []int64, lo, hi int64) {
					body(tid, pc, prefix, lo, hi)
				})
		}
		live.chunkStart(tid, tr.Now())
		before := stats[tid].Iterations
		err := core.ForRanges(bounds[tid], clo, chi-1, &stats[tid],
			func(pc int64, prefix []int64, lo, hi int64) {
				body(tid, pc, prefix, lo, hi)
			})
		s := bounds[tid].Stats()
		live.chunkEnd(tid, stats[tid].Iterations-before, s.Sub(published[tid]))
		published[tid] = s
		return err
	})
	for t := range stats {
		agg.Add(stats[t])
	}
	if tel != nil {
		tel.Counter("omp.range_batches").Add(agg.Batches)
		tel.Counter("omp.range_carries").Add(agg.Carries)
		tel.Counter("omp.iterations").Add(agg.Iterations)
	}
	return agg, runErr
}

// ThreadStats is the per-thread runtime record of an instrumented
// collapsed run: how many chunks and iterations the thread executed,
// how long it was busy, how that time splits between the once-per-chunk
// closed-form recovery and the per-iteration lexicographic
// incrementation, and the thread's own unranker counters.
type ThreadStats struct {
	TID        int
	Chunks     int64
	Iterations int64
	Busy       time.Duration
	Recovery   time.Duration
	Increment  time.Duration
	Unrank     unrank.Stats
}

// CollapsedStats aggregates the runtime statistics of one collapsed
// parallel run: the per-thread breakdown plus the team-wide sums of the
// recovery counters (root evaluations, corrections, fallbacks,
// searches) — the quantities behind the paper's Fig. 10 overhead
// discussion.
type CollapsedStats struct {
	Threads int
	Total   int64
	// Stats is the sum of every thread's unranker counters.
	Stats unrank.Stats
	// PerThread has one entry per team member, indexed by tid.
	PerThread []ThreadStats
}

// ImbalanceReport derives the load-balance summary (max/mean busy time,
// coefficients of variation) from the per-thread breakdown.
func (cs CollapsedStats) ImbalanceReport() telemetry.ImbalanceReport {
	loads := make([]telemetry.ThreadLoad, len(cs.PerThread))
	for i, t := range cs.PerThread {
		loads[i] = telemetry.ThreadLoad{
			TID:        t.TID,
			Chunks:     t.Chunks,
			Iterations: t.Iterations,
			Busy:       t.Busy,
			Recovery:   t.Recovery,
			Increment:  t.Increment,
		}
	}
	return telemetry.NewImbalance(loads)
}

// RunCollapsedWithStats is CollapsedFor returning the per-thread runtime
// breakdown and the recovery statistics aggregated across *all* workers'
// unrankers.
func RunCollapsedWithStats(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) (CollapsedStats, error) {
	return CollapsedForTelemetry(r, params, threads, sched, nil, body)
}

// CollapsedForTelemetry is the instrumented collapsed executor: it runs
// the §V scheme like CollapsedFor while recording a per-thread chunk
// timeline — chunk bounds, iteration count, recovery time vs increment
// time — and aggregating each worker's unrank statistics. When tel is
// non-nil, every chunk additionally becomes a "chunk"-category trace
// event (named after the schedule kind) suitable for Chrome trace
// export, and the team-wide counters are published on the registry.
//
// The per-iteration timing instrumentation costs two monotonic clock
// reads per iteration; use CollapsedFor for uninstrumented runs.
func CollapsedForTelemetry(r *core.Result, params map[string]int64, threads int, sched Schedule,
	tel *telemetry.Registry, body func(tid int, idx []int64)) (CollapsedStats, error) {
	return CollapsedForTelemetryCtx(nil, r, params, threads, sched, tel, body)
}

// CollapsedForTelemetryCtx is CollapsedForTelemetry with cooperative
// cancellation at chunk boundaries. It additionally publishes the
// robustness counters on tel: "omp.panics_recovered" (worker panics
// captured as errors), "omp.cancellations" (runs stopped by ctx), and
// "unrank.verifies"/"unrank.verify_escalations" (exact re-rank checks
// and binary-search escalations of verified recovery).
func CollapsedForTelemetryCtx(ctx context.Context, r *core.Result, params map[string]int64,
	threads int, sched Schedule, tel *telemetry.Registry,
	body func(tid int, idx []int64)) (CollapsedStats, error) {
	return collapsedForInstrumented(ctx, r, params, threads, sched, tel, true, body)
}

// CollapsedForChunkTelemetryCtx is CollapsedForTelemetryCtx at chunk
// granularity: chunk durations, recovery times, live gauges, trace
// events and robustness counters are all still recorded, but the
// per-iteration busy-vs-increment clock reads are skipped, so the body
// loop runs at CollapsedFor speed (ThreadStats.Increment stays zero and
// Busy includes incrementation). This is the executor behind the tuned
// path, where instrumentation skew would corrupt the very measurements
// the planner feeds on.
func CollapsedForChunkTelemetryCtx(ctx context.Context, r *core.Result, params map[string]int64,
	threads int, sched Schedule, tel *telemetry.Registry,
	body func(tid int, idx []int64)) (CollapsedStats, error) {
	return collapsedForInstrumented(ctx, r, params, threads, sched, tel, false, body)
}

// collapsedForInstrumented is the shared instrumented executor;
// fineTiming selects per-iteration increment timing (two monotonic
// clock reads per iteration) versus chunk-granularity timing only.
func collapsedForInstrumented(ctx context.Context, r *core.Result, params map[string]int64,
	threads int, sched Schedule, tel *telemetry.Registry, fineTiming bool,
	body func(tid int, idx []int64)) (CollapsedStats, error) {
	if threads < 1 {
		threads = 1
	}
	bounds, err := bindTeam(r, params, threads)
	if err != nil {
		return CollapsedStats{}, err
	}
	total := bounds[0].Total()
	cs := CollapsedStats{Threads: threads, Total: total, PerThread: make([]ThreadStats, threads)}
	for t := range cs.PerThread {
		cs.PerThread[t].TID = t
	}
	if total == 0 {
		return cs, nil
	}
	end, err := pcEnd(total)
	if err != nil {
		return cs, err
	}
	tr := tel.Trace()
	hist := tel.Histogram("omp.chunk_seconds", nil)
	recHist := tel.Histogram("omp.recovery_seconds", nil)
	live := newLiveTeam(tel, threads, sched.Kind)
	published := make([]unrank.Stats, threads)
	evName := sched.Kind.String()
	runErr := ParallelForChunksCtx(ctx, threads, 1, end, sched, func(tid int, clo, chi int64) error {
		st := &cs.PerThread[tid]
		b := bounds[tid]
		idx := b.Scratch()
		var startOff time.Duration
		if tr != nil {
			startOff = tr.Now()
		}
		live.chunkStart(tid, startOff)
		t0 := time.Now()
		if err := b.Unrank(clo, idx); err != nil {
			return err
		}
		recovery := time.Since(t0)
		// The per-chunk recovery histogram is the autotuner's measured
		// cost input: its p50 replaces the calibrated constant when the
		// planner charges the §V recovery per simulated chunk.
		recHist.Observe(recovery.Seconds())
		var incDur time.Duration
		var done int64
		var chunkErr error
		if fineTiming {
			for pc := clo; pc < chi; pc++ {
				body(tid, idx)
				done++
				if pc+1 >= chi {
					break
				}
				is := time.Now()
				ok := b.Increment(idx)
				incDur += time.Since(is)
				if !ok {
					chunkErr = fmt.Errorf("omp: iteration space exhausted at pc=%d before reaching %d: %w",
						pc, chi-1, faults.ErrRecoveryDiverged)
					break
				}
			}
		} else {
			// Chunk granularity: hand the already-recovered start tuple to
			// the range-batched driver — flat innermost runs, bounds
			// re-evaluated only on outer carries — so the body loop costs
			// the same as an uninstrumented CollapsedForRanges chunk.
			chunkErr = core.ForRangeFrom(b, clo, chi-1, idx, func(pc int64, ix []int64) {
				body(tid, ix)
				done++
			})
		}
		busy := time.Since(t0)
		st.Chunks++
		st.Iterations += done
		st.Busy += busy
		st.Recovery += recovery
		st.Increment += incDur
		hist.Observe(busy.Seconds())
		if live != nil {
			// Live progress: advance the per-worker gauges and publish the
			// recovery-counter deltas of this chunk, so a mid-run scrape
			// sees escalations and imbalance as they happen.
			s := b.Stats()
			live.chunkEnd(tid, done, s.Sub(published[tid]))
			published[tid] = s
		}
		if tr != nil {
			tr.Add(telemetry.Event{
				Name: evName, Cat: "chunk", TID: tid, Start: startOff, Dur: busy,
				Args: []telemetry.Arg{
					{Name: "pc_lo", Value: clo},
					{Name: "pc_hi", Value: chi},
					{Name: "iters", Value: done},
					{Name: "recovery_ns", Value: recovery.Nanoseconds()},
					{Name: "increment_ns", Value: incDur.Nanoseconds()},
				},
			})
		}
		return chunkErr
	})
	// The per-chunk path published counter deltas live; here only the
	// remainder accrued outside chunk boundaries (e.g. during Bind) is
	// added, so the registry totals match cs.Stats exactly without
	// double counting.
	var remainder unrank.Stats
	for t, b := range bounds {
		s := b.Stats()
		cs.PerThread[t].Unrank = s
		cs.Stats.Add(s)
		remainder.Add(s.Sub(published[t]))
	}
	live.publishRemainder(remainder)
	if runErr != nil {
		switch {
		case faults.AsPanic(runErr) != nil:
			tel.Counter("omp.panics_recovered").Inc()
		case errors.Is(runErr, faults.ErrCanceled):
			tel.Counter("omp.cancellations").Inc()
		}
	}
	tel.Counter("omp.iterations").Add(total)
	return cs, runErr
}

// CollapsedForSIMD executes the collapsed space with the §VI.A
// vectorization scheme: each thread recovers its first tuple once, then
// repeatedly materialises batches of up to vlength consecutive tuples
// through unrank.RecoverBatchSeeded — the batched entry point rides its
// incrementation fast path for consecutive ranks, so the cost profile is
// the paper's (one costly recovery per thread, one cheap advance per
// iteration) while the whole batch lands in the thread-private array T
// in one call, which body consumes as the "#pragma omp simd" loop.
func CollapsedForSIMD(r *core.Result, params map[string]int64, threads, vlength int,
	body func(tid int, batch [][]int64)) error {
	if vlength < 1 {
		vlength = 1
	}
	if threads < 1 {
		threads = 1
	}
	bounds, err := bindTeam(r, params, threads)
	if err != nil {
		return err
	}
	total := bounds[0].Total()
	if total == 0 {
		return nil
	}
	end, err := pcEnd(total)
	if err != nil {
		return err
	}
	depth := r.C
	return ParallelForChunksCtx(nil, threads, 1, end, Schedule{Kind: Static},
		func(tid int, clo, chi int64) error {
			b := bounds[tid]
			// Pre-allocate the thread-private tuple array T[vlength].
			backing := make([]int64, vlength*depth)
			batch := make([][]int64, vlength)
			for v := range batch {
				batch[v] = backing[v*depth : (v+1)*depth]
			}
			pcs := make([]int64, vlength)
			cur := make([]int64, depth)
			if err := b.Unrank(clo, cur); err != nil {
				return err
			}
			curPC := clo
			for pc := clo; pc < chi; {
				nb := 0
				for v := 0; v < vlength && pc+int64(v) < chi; v++ {
					pcs[v] = pc + int64(v)
					nb++
				}
				if err := b.RecoverBatchSeeded(curPC, cur, pcs[:nb], batch[:nb]); err != nil {
					return err
				}
				body(tid, batch[:nb])
				copy(cur, batch[nb-1])
				curPC = pcs[nb-1]
				pc += int64(nb)
			}
			return nil
		})
}

// CollapsedForWarp executes the collapsed space with the §VI.B GPU-warp
// scheme: W lanes run concurrently; lane w executes iterations pc = w+1,
// w+1+W, w+1+2W, … The W lane-start tuples are recovered in a single
// batched pass (consecutive ranks, so the batch costs one full recovery
// plus W−1 incrementations) before the lanes spawn; each lane then
// advances by W lexicographic incrementations between iterations,
// achieving the coalesced-access distribution of the paper.
func CollapsedForWarp(r *core.Result, params map[string]int64, W int,
	body func(lane int, pc int64, idx []int64)) error {
	if W < 1 {
		W = 1
	}
	bounds, err := bindTeam(r, params, W)
	if err != nil {
		return err
	}
	total := bounds[0].Total()
	if total > math.MaxInt64-int64(W) {
		// Lane strides pc += W would wrap past MaxInt64 near the end.
		return fmt.Errorf("omp: collapsed total %d overflows the warp stride: %w",
			total, faults.ErrOverflow)
	}
	// Batch-recover the W lane starts (pcs 1..W) in one pass before the
	// lanes spawn: consecutive ranks ride RecoverBatch's incrementation
	// fast path, so the whole warp pays a single full recovery instead of
	// one per lane.
	nlanes := int64(W)
	if total < nlanes {
		nlanes = total
	}
	startPCs := make([]int64, nlanes)
	startBacking := make([]int64, int(nlanes)*r.C)
	starts := make([][]int64, nlanes)
	for w := range starts {
		startPCs[w] = int64(w) + 1
		starts[w] = startBacking[w*r.C : (w+1)*r.C]
	}
	if err := bounds[0].RecoverBatch(startPCs, starts); err != nil {
		return err
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for lane := 0; lane < W; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("omp: warp lane %d: %w", lane, faults.Recovered(r))
					})
				}
			}()
			b := bounds[lane]
			start := int64(lane) + 1
			if start > total {
				return
			}
			idx := make([]int64, r.C)
			copy(idx, starts[lane])
			for pc := start; pc <= total; pc += int64(W) {
				body(lane, pc, idx)
				for inc := 0; inc < W && pc+int64(inc) < total; inc++ {
					if !b.Increment(idx) {
						break
					}
				}
			}
		}(lane)
	}
	wg.Wait()
	return firstErr
}
