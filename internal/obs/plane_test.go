package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

func triNest(t *testing.T) *nest.Nest {
	t.Helper()
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestLiveScrapeDuringRun is the plane's acceptance test: compile a
// nest through the structural cache (miss then hit), run the collapsed
// loop under the instrumented executor, and scrape GET /metrics from
// inside the running loop. The mid-run exposition must be valid
// OpenMetrics and must already carry compile, cache, omp and unrank
// families.
func TestLiveScrapeDuringRun(t *testing.T) {
	tel := telemetry.New()
	tel.EnableFlight(256, true)
	cache := core.NewCollapseCache(4)
	opts := unrank.Options{Telemetry: tel}

	res, err := core.CollapseCached(cache, triNest(t), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.CollapseCached(cache, triNest(t), 2, opts); err != nil {
		t.Fatal(err) // second compile: structural cache hit
	}

	srv := httptest.NewServer(NewPlane(tel).Handler())
	defer srv.Close()

	// The scrape fires from a worker goroutine, so it must not use
	// t.Fatal; errors are carried out and checked on the test goroutine.
	var midExposition atomic.Pointer[string]
	var midErr atomic.Pointer[error]
	scrape := func() {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			midErr.CompareAndSwap(nil, &err)
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			midErr.CompareAndSwap(nil, &err)
			return
		}
		body := string(b)
		midExposition.CompareAndSwap(nil, &body)
	}
	_, err = omp.CollapsedForTelemetry(res, map[string]int64{"N": 120}, 2,
		omp.Schedule{Kind: omp.StaticChunk, Chunk: 16}, tel, func(tid int, idx []int64) {
			if idx[0] > 60 && midExposition.Load() == nil && midErr.Load() == nil {
				scrape()
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if ep := midErr.Load(); ep != nil {
		t.Fatalf("mid-run scrape failed: %v", *ep)
	}
	bodyp := midExposition.Load()
	if bodyp == nil {
		t.Fatal("mid-run scrape never fired")
	}
	fams, err := ParseExposition(strings.NewReader(*bodyp))
	if err != nil {
		t.Fatalf("mid-run exposition invalid: %v", err)
	}
	for _, prefix := range []string{"compile_", "cache_", "omp_", "unrank_"} {
		found := false
		for name := range fams {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("mid-run exposition has no %s* family; families: %v",
				prefix, FamilyNames(fams))
		}
	}
	if v := findSample(t, fams, "cache_hits", "cache_hits_total", nil); v != 1 {
		t.Errorf("cache_hits_total = %v, want 1", v)
	}

	// After the run the chunk-duration histogram must be populated and
	// its quantile gauges present.
	_, final := get(t, srv.URL+"/metrics")
	fams, err = ParseExposition(strings.NewReader(final))
	if err != nil {
		t.Fatalf("final exposition invalid: %v", err)
	}
	if cnt := findSample(t, fams, "omp_chunk_seconds", "omp_chunk_seconds_count", nil); cnt <= 0 {
		t.Errorf("omp_chunk_seconds_count = %v, want > 0", cnt)
	}
	if _, ok := fams["omp_chunk_seconds_quantile"]; !ok {
		t.Error("omp_chunk_seconds_quantile family missing")
	}
}

// TestPlaneEndpoints covers the non-/metrics routes: index, healthz,
// the JSON snapshot with interval rates, the flight-recorder trace, and
// the pprof mount.
func TestPlaneEndpoints(t *testing.T) {
	tel := telemetry.New()
	tel.EnableFlight(64, true)
	p := NewPlane(tel)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	if code, body := get(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv.URL+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/nosuch"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
	if code, body := get(t, srv.URL+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (len %d)", code, len(body))
	}

	// First snapshot: no interval yet.
	tel.Counter("work.items").Add(10)
	_, body := get(t, srv.URL+"/snapshot")
	var doc SnapshotDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("snapshot JSON: %v\n%s", err, body)
	}
	if doc.IntervalS != 0 || doc.Rates != nil {
		t.Errorf("first snapshot has interval %v rates %v, want none", doc.IntervalS, doc.Rates)
	}
	if doc.Counters["work.items"] != 10 {
		t.Errorf("snapshot counters = %v", doc.Counters)
	}

	// Second snapshot after more work: rates appear.
	tel.Counter("work.items").Add(30)
	time.Sleep(10 * time.Millisecond)
	_, body = get(t, srv.URL+"/snapshot")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.IntervalS <= 0 {
		t.Errorf("second snapshot interval = %v, want > 0", doc.IntervalS)
	}
	rate := doc.Rates["work.items"]
	if rate <= 0 {
		t.Errorf("work.items rate = %v, want > 0 (30 added over %vs)", rate, doc.IntervalS)
	}
	if doc.Flight == nil || doc.Flight.Cap != 64 {
		t.Errorf("snapshot flight doc = %+v, want cap 64", doc.Flight)
	}

	// A busy worker's inflight marker yields a derived age.
	tel.Gauge(`omp.worker_inflight_since_ns{tid="0"}`).Set(1) // ancient
	_, body = get(t, srv.URL+"/snapshot")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	age, ok := doc.Derived[`omp.worker_inflight_age_ns{tid="0"}`]
	if !ok || age <= 0 {
		t.Errorf("derived inflight age = %d (present=%v), want > 0", age, ok)
	}

	// /trace serves the flight window as Chrome trace JSON.
	sp := tel.StartSpan("chunk", "body", 1)
	sp.End()
	_, body = get(t, srv.URL+"/trace")
	var trace struct {
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace JSON: %v\n%s", err, body)
	}
	if len(trace.Events) == 0 {
		t.Error("/trace returned no events after a recorded span")
	}
}

// TestPlaneServe exercises the real listener path (:0 port).
func TestPlaneServe(t *testing.T) {
	tel := telemetry.New()
	tel.Counter("demo.total").Add(1)
	p := NewPlane(tel)
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Addr() == nil {
		t.Fatal("Addr nil after Serve")
	}
	code, body := get(t, fmt.Sprintf("http://%s/metrics", addr))
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if _, err := ParseExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("served exposition invalid: %v", err)
	}
	if !strings.Contains(body, "demo_total_total 1") {
		t.Errorf("exposition missing counter sample:\n%s", body)
	}
}

// TestConcurrentScrape hammers /metrics and /snapshot while a collapsed
// run mutates the registry — the plane must stay race-free (this runs
// under -race via the Makefile's RACE_PKGS).
func TestConcurrentScrape(t *testing.T) {
	tel := telemetry.New()
	tel.EnableFlight(128, false) // flight-only retention, server mode
	res, err := core.Collapse(triNest(t), 2, unrank.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewPlane(tel).Handler())
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := omp.CollapsedForTelemetry(res, map[string]int64{"N": 200}, 4,
			omp.Schedule{Kind: omp.StaticChunk, Chunk: 8}, tel, func(tid int, idx []int64) {})
		if err != nil {
			t.Error(err)
		}
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
			// One final scrape of each endpoint after the run.
			if _, body := get(t, srv.URL+"/metrics"); body != "" {
				if _, err := ParseExposition(strings.NewReader(body)); err != nil {
					t.Fatalf("post-run exposition invalid: %v", err)
				}
			}
			get(t, srv.URL+"/snapshot")
			get(t, srv.URL+"/trace")
			return
		default:
		}
		switch i % 3 {
		case 0:
			_, body := get(t, srv.URL+"/metrics")
			if _, err := ParseExposition(strings.NewReader(body)); err != nil {
				t.Fatalf("scrape %d invalid exposition: %v", i, err)
			}
		case 1:
			get(t, srv.URL+"/snapshot")
		case 2:
			get(t, srv.URL+"/trace")
		}
	}
}
