package omp

import "sync"

// Team is a persistent worker pool mirroring an OpenMP thread team: the
// goroutines are created once and reused across parallel regions, so
// repeated parallel loops (e.g. a time-stepped solver calling the
// collapsed loop every iteration) avoid per-region goroutine spawning —
// the same reason OpenMP keeps its threads alive between regions.
//
// A Team must be Closed when no longer needed. Methods may not be called
// concurrently with each other (one parallel region at a time, as in
// OpenMP's fork/join model).
type Team struct {
	n       int
	regions []chan func(tid int)
	wg      sync.WaitGroup // workers alive
	barrier sync.WaitGroup // region completion
	closed  bool
}

// NewTeam starts a team of n persistent workers (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	t := &Team{n: n, regions: make([]chan func(tid int), n)}
	for i := 0; i < n; i++ {
		ch := make(chan func(tid int))
		t.regions[i] = ch
		t.wg.Add(1)
		go func(tid int) {
			defer t.wg.Done()
			for region := range ch {
				region(tid)
				t.barrier.Done()
			}
		}(i)
	}
	return t
}

// Size returns the number of workers.
func (t *Team) Size() int { return t.n }

// Do runs region once on every worker (fork), waiting for all to finish
// (join).
func (t *Team) Do(region func(tid int)) {
	if t.closed {
		panic("omp: Do on closed Team")
	}
	t.barrier.Add(t.n)
	for _, ch := range t.regions {
		ch <- region
	}
	t.barrier.Wait()
}

// ParallelForChunks is ParallelForChunks on the persistent team.
func (t *Team) ParallelForChunks(lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	if hi-lo <= 0 {
		return
	}
	plan := chunkPlan(t.n, lo, hi, sched)
	t.Do(func(tid int) {
		plan(tid, func(clo, chi int64) { body(tid, clo, chi) })
	})
}

// ParallelFor is ParallelFor on the persistent team.
func (t *Team) ParallelFor(lo, hi int64, sched Schedule, body func(tid int, i int64)) {
	t.ParallelForChunks(lo, hi, sched, func(tid int, clo, chi int64) {
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
	})
}

// Close shuts the workers down and waits for them to exit. The Team must
// not be used afterwards.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.regions {
		close(ch)
	}
	t.wg.Wait()
}
