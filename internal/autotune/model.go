package autotune

import (
	"math"

	"repro/internal/core"
	"repro/internal/ehrhart"
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/unrank"
)

// The measured work vector. The scheduling unit of a collapsed loop is
// one collapsed iteration pc; when the collapse covers the whole nest
// every unit carries identical work (the paper's balance guarantee),
// but a partial collapse (c < depth) leaves inner loops whose trip
// counts vary across the collapsed range — exactly the imbalance the
// planner must see. The per-unit trip count is not guessed: it is the
// Ehrhart count polynomial of the inner sub-nest, evaluated at the
// tuple the unranker recovers for that pc. Totals run into the
// millions, so the vector is compressed to at most maxUnits cells of G
// consecutive pcs each, sampling the inner count at the cell midpoint —
// trip-count polynomials vary smoothly across the collapsed range, so
// midpoint sampling preserves the work profile the schedules react to.

// workModel is the planner's view of one (nest shape × params) point:
// the compressed per-cell work vector (in abstract work units — inner
// iterations), the cell size G in pcs, and the totals.
type workModel struct {
	work      []float64 // per-cell work units, len <= maxUnits
	cellPCs   float64   // pcs per cell (last cell may be partial)
	total     int64     // collapsed units (pc range)
	totalWork float64   // sum(work): inner iterations
	uniform   bool      // true when every pc carries one unit
}

// buildWorkModel derives the work model for a bound collapse result.
// The inner-count polynomial path needs one index recovery per cell; a
// full-depth collapse (or an inner sub-nest the validator rejects)
// short-circuits to the uniform model.
func buildWorkModel(res *core.Result, b *unrank.Bound, params map[string]int64, maxUnits int) workModel {
	if maxUnits < 1 {
		maxUnits = 1
	}
	total := b.Total()
	if total <= 0 {
		return workModel{total: total}
	}
	cells := total
	if cells > int64(maxUnits) {
		cells = int64(maxUnits)
	}
	g := (total + cells - 1) / cells
	cells = (total + g - 1) / g
	m := workModel{
		work:    make([]float64, cells),
		cellPCs: float64(g),
		total:   total,
	}

	cnt := innerCount(res)
	if cnt == nil {
		// Full collapse: one work unit per pc.
		m.uniform = true
		for k := int64(0); k < cells; k++ {
			m.work[k] = float64(cellExtent(k, g, total))
		}
		m.totalWork = float64(total)
		return m
	}

	env := make(map[string]float64, len(params)+res.C)
	for name, v := range params {
		env[name] = float64(v)
	}
	idx := make([]int64, res.C)
	indices := res.Nest.Indices()[:res.C]
	for k := int64(0); k < cells; k++ {
		lo := 1 + k*g
		hi := lo + cellExtent(k, g, total) - 1
		mid := lo + (hi-lo)/2
		w := 1.0
		if err := b.Unrank(mid, idx); err == nil {
			for j, name := range indices {
				env[name] = float64(idx[j])
			}
			if v, err := cnt.EvalFloat(env); err == nil && !math.IsNaN(v) {
				w = v
				if w < 0 {
					w = 0
				}
			}
		}
		m.work[k] = w * float64(hi-lo+1)
		m.totalWork += m.work[k]
	}
	return m
}

// cellExtent returns the number of pcs cell k covers.
func cellExtent(k, g, total int64) int64 {
	lo := 1 + k*g
	hi := lo + g - 1
	if hi > total {
		hi = total
	}
	return hi - lo + 1
}

// innerCount returns the Ehrhart count polynomial of the non-collapsed
// inner sub-nest — its variables are the nest parameters plus the
// collapsed iterators, mirroring CollapseAt's "surrounding iterators
// become symbolic parameters" — or nil when the collapse covers the
// whole nest (uniform work) or the inner sub-nest does not validate.
func innerCount(res *core.Result) (p *poly.Poly) {
	defer func() {
		// The summation pipeline panics on malformed input; planning
		// must degrade to the uniform model, never crash the caller.
		if recover() != nil {
			p = nil
		}
	}()
	if res.C >= len(res.Nest.Loops) {
		return nil
	}
	params := append([]string(nil), res.Nest.Params...)
	for _, l := range res.Nest.Loops[:res.C] {
		params = append(params, l.Index)
	}
	inner, err := nest.New(params, res.Nest.Loops[res.C:]...)
	if err != nil {
		return nil
	}
	return ehrhart.Count(inner)
}
