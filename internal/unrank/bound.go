package unrank

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"repro/internal/faults"
	"repro/internal/nest"
)

// Stats counts recovery events, exposed for the overhead experiments
// (paper Fig. 10) and for diagnosing floating-point behaviour.
type Stats struct {
	RootEvals   int64 // closed-form radical evaluations
	Corrections int64 // exact ±1 correction steps taken
	Fallbacks   int64 // binary-search fallbacks (NaN/Inf or non-convergence)
	Searches    int64 // binary-search recoveries (fallbacks + binary mode)
	Verifies    int64 // exact big.Rat re-rank checks (verify mode)
	Escalations int64 // verify mismatches escalated to binary search
}

// Add accumulates o into s (used to aggregate per-thread stats).
func (s *Stats) Add(o Stats) {
	s.RootEvals += o.RootEvals
	s.Corrections += o.Corrections
	s.Fallbacks += o.Fallbacks
	s.Searches += o.Searches
	s.Verifies += o.Verifies
	s.Escalations += o.Escalations
}

// String renders the counters in a compact fixed-order form.
func (s Stats) String() string {
	out := fmt.Sprintf("root evals %d, corrections %d, fallbacks %d, searches %d",
		s.RootEvals, s.Corrections, s.Fallbacks, s.Searches)
	if s.Verifies > 0 || s.Escalations > 0 {
		out += fmt.Sprintf(", verifies %d, escalations %d", s.Verifies, s.Escalations)
	}
	return out
}

// Bound is an Unranker bound to concrete parameter values, ready for
// repeated Unrank/Rank/Increment calls. A Bound is not safe for
// concurrent use — give each goroutine its own via Unranker.Bind (the
// generated OpenMP code likewise privatizes the recovery state).
type Bound struct {
	u     *Unranker
	inst  *nest.Instance
	np    int
	depth int
	total int64
	vals  []int64 // params followed by indices, reused (exact path)
	// fvals[k] is the positional float argument vector of level k's
	// compiled root: [params..., i_0..i_{k-1}, pc].
	fvals [][]float64
	stats Stats
}

// Bind fixes parameter values, precomputing the total iteration count.
// A parameter binding whose iteration count exceeds int64 returns an
// error wrapping faults.ErrOverflow.
func (u *Unranker) Bind(params map[string]int64) (b *Bound, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, faults.ErrOverflow) {
				b, err = nil, fmt.Errorf("unrank: bind %v: %w", params, e)
				return
			}
			panic(r)
		}
	}()
	inst, err := u.nest.Bind(params)
	if err != nil {
		return nil, err
	}
	b = &Bound{
		u:     u,
		inst:  inst,
		np:    len(u.nest.Params),
		depth: u.nest.Depth(),
		vals:  make([]int64, len(u.order)),
	}
	cvals := make([]int64, b.np)
	for i, p := range u.nest.Params {
		v := params[p]
		b.vals[i] = v
		cvals[i] = v
	}
	b.fvals = make([][]float64, len(u.levels))
	for k := range u.levels {
		fv := make([]float64, b.np+k+1)
		for i := range cvals {
			fv[i] = float64(cvals[i])
		}
		b.fvals[k] = fv
	}
	b.total = u.countC.EvalExact(cvals)
	if b.total < 0 {
		return nil, fmt.Errorf("unrank: negative iteration count %d (irregular nest for %v)", b.total, params)
	}
	return b, nil
}

// MustBind is Bind but panics on error.
func (u *Unranker) MustBind(params map[string]int64) *Bound {
	b, err := u.Bind(params)
	if err != nil {
		panic(err)
	}
	return b
}

// Total returns the number of iterations: the collapsed loop runs
// pc = 1 .. Total.
func (b *Bound) Total() int64 { return b.total }

// Instance returns the bound nest instance (for bound evaluation and
// lexicographic incrementation).
func (b *Bound) Instance() *nest.Instance { return b.inst }

// Stats returns accumulated recovery statistics.
func (b *Bound) Stats() Stats { return b.stats }

// ResetStats clears the recovery statistics.
func (b *Bound) ResetStats() { b.stats = Stats{} }

// rkEval exactly evaluates level k's substituted ranking polynomial at
// candidate index value x, given the already-recovered prefix in b.vals.
func (b *Bound) rkEval(k int, x int64) int64 {
	b.vals[b.np+k] = x
	return b.u.levels[k].rk.EvalExact(b.vals[:b.np+k+1])
}

// searchLevel exactly recovers level k by binary search: the largest
// x in [lo, hi) with r_k(x) <= pc. The ranking polynomial is monotone in
// x, so this is O(log range) exact evaluations.
func (b *Bound) searchLevel(k int, pc, lo, hi int64) int64 {
	b.stats.Searches++
	lo0, hi0 := lo, hi-1
	for lo0 < hi0 {
		mid := lo0 + (hi0-lo0+1)/2
		if b.rkEval(k, mid) <= pc {
			lo0 = mid
		} else {
			hi0 = mid - 1
		}
	}
	return lo0
}

// Unrank recovers the iteration tuple of rank pc (1-based) into idx,
// which must have length equal to the nest depth.
//
// In verify mode (Options.Verify) the recovered tuple is exactly
// re-ranked with big.Rat arithmetic; a mismatch escalates every level to
// exact binary search, and a second mismatch returns an error wrapping
// faults.ErrRecoveryDiverged. An exact evaluation overflowing int64 is
// returned as an error wrapping faults.ErrOverflow rather than a panic.
func (b *Bound) Unrank(pc int64, idx []int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, faults.ErrOverflow) {
				err = fmt.Errorf("unrank: pc = %d: %w", pc, e)
				return
			}
			panic(r)
		}
	}()
	if len(idx) != b.depth {
		return fmt.Errorf("unrank: index slice has length %d, want %d", len(idx), b.depth)
	}
	if pc < 1 || pc > b.total {
		return fmt.Errorf("unrank: pc = %d out of range 1..%d", pc, b.total)
	}
	pcf := float64(pc)
	for k := 0; k < b.depth-1; k++ {
		lv := &b.u.levels[k]
		lo := b.inst.LowerAt(k, idx)
		hi := b.inst.UpperAt(k, idx)
		var ik int64
		recovered := false
		if lv.rootFn != nil {
			fv := b.fvals[k]
			fv[len(fv)-1] = pcf
			x := faults.PerturbRoot(k, lv.rootFn(fv))
			b.stats.RootEvals++
			if !cmplx.IsNaN(x) && !cmplx.IsInf(x) &&
				math.Abs(imag(x)) <= 1e-6*(1+math.Abs(real(x))) {
				ik = int64(math.Floor(real(x) + 1e-9))
				if ik < lo {
					ik = lo
				}
				if ik > hi-1 {
					ik = hi - 1
				}
				// Exact monotone correction (bounded): ensure
				// r_k(ik) <= pc < r_k(ik+1).
				steps := 0
				ok := true
				for b.rkEval(k, ik) > pc {
					ik--
					steps++
					if ik < lo || steps > b.u.maxCorr {
						ok = false
						break
					}
				}
				if ok {
					for ik+1 <= hi-1 && b.rkEval(k, ik+1) <= pc {
						ik++
						steps++
						if steps > b.u.maxCorr {
							ok = false
							break
						}
					}
				}
				if ok {
					b.stats.Corrections += int64(steps)
					recovered = true
					ik = faults.PerturbLevel(k, ik)
				}
			}
			if !recovered {
				b.stats.Fallbacks++
			}
		}
		if !recovered {
			ik = b.searchLevel(k, pc, lo, hi)
		}
		b.setLevel(k, ik, idx)
	}
	b.lastLevel(pc, idx)
	if b.u.verify && !b.verifyRank(pc, idx) {
		// Escalation rung of the degradation ladder: redo every level
		// with exact binary search over the monotone ranking polynomial.
		b.stats.Escalations++
		for k := 0; k < b.depth-1; k++ {
			ik := b.searchLevel(k, pc, b.inst.LowerAt(k, idx), b.inst.UpperAt(k, idx))
			b.setLevel(k, ik, idx)
		}
		b.lastLevel(pc, idx)
		if !b.verifyRank(pc, idx) {
			return fmt.Errorf("unrank: pc = %d: exact re-rank of %v mismatches after binary-search escalation: %w",
				pc, idx, faults.ErrRecoveryDiverged)
		}
	}
	return nil
}

// setLevel records the recovered value of level k in idx, the exact
// evaluation vector, and the deeper levels' compiled float arguments.
func (b *Bound) setLevel(k int, ik int64, idx []int64) {
	idx[k] = ik
	b.vals[b.np+k] = ik
	for q := k + 1; q < len(b.fvals); q++ {
		b.fvals[q][b.np+k] = float64(ik)
	}
}

// lastLevel computes the final index directly from the prefix rank:
// i = lb + (pc - rank of first iteration at this prefix).
func (b *Bound) lastLevel(pc int64, idx []int64) {
	base := b.u.lastRank.EvalExact(b.vals[:b.np+b.depth-1])
	lb := b.inst.LowerAt(b.depth-1, idx)
	idx[b.depth-1] = lb + (pc - base)
}

// verifyRank checks idx is the iteration of rank pc: every index within
// its (prefix-dependent) bounds, and the exact big.Rat re-rank equal to
// pc. Both checks are needed — the last level is constructed so its rank
// is pc for any prefix, so re-ranking alone cannot catch a corrupted
// prefix; domain membership plus the rank bijection can.
func (b *Bound) verifyRank(pc int64, idx []int64) bool {
	b.stats.Verifies++
	for k := 0; k < b.depth; k++ {
		if idx[k] < b.inst.LowerAt(k, idx) || idx[k] >= b.inst.UpperAt(k, idx) {
			return false
		}
	}
	copy(b.vals[b.np:], idx)
	r := b.u.rankComp.EvalBig(b.vals)
	return r.Cmp(new(big.Rat).SetInt64(pc)) == 0
}

// Rank exactly evaluates the ranking polynomial at idx. The result is
// the 1-based rank when idx lies inside the iteration domain.
func (b *Bound) Rank(idx []int64) int64 {
	if len(idx) != b.depth {
		panic("unrank: wrong index arity")
	}
	copy(b.vals[b.np:], idx)
	return b.u.rankComp.EvalExact(b.vals)
}

// First fills idx with the first iteration tuple; see nest.Instance.
func (b *Bound) First(idx []int64) bool { return b.inst.First(idx) }

// Increment advances idx lexicographically; see nest.Instance.
func (b *Bound) Increment(idx []int64) bool { return b.inst.Increment(idx) }
