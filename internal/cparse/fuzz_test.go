package cparse

import "testing"

// FuzzParse checks the C front end never panics on arbitrary input and
// that accepted programs yield valid nests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		correlationSrc,
		"#pragma omp parallel for collapse(1)\nfor (i = 0; i < N; i++) f(i);",
		"#pragma omp parallel for collapse(2)\nfor (i = 0; i < N; i++)\nfor (j = i; j <= i+4; j++) { g(); }",
		"#pragma omp for collapse(3)",
		"#pragma omp parallel for collapse(2)\nfor (i = 0; i < N; i++) {",
		"for (i = 0; i < N; i++) f(i);",
		"#pragma omp parallel for collapse(1)\nfor (i = 0; i < N; i -= 1) f(i);",
		"#pragma omp parallel for collapse(1) schedule(dynamic, 4)\nfor (i = 2; i < 2*N - 3; ++i) /*c*/ f(i);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog.Nest == nil {
			t.Fatal("accepted program with nil nest")
		}
		if err := prog.Nest.Validate(); err != nil {
			t.Fatalf("accepted invalid nest: %v", err)
		}
		if prog.Nest.Depth() != prog.CollapseCount {
			t.Fatalf("depth %d != collapse %d", prog.Nest.Depth(), prog.CollapseCount)
		}
	})
}
