package nonrect

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/nest"
)

func triangular(t *testing.T) (*Nest, *Result) {
	t.Helper()
	n := MustNewNest([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
	res, err := Collapse(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	return n, res
}

// TestWorkerPanicSurfacesThroughAPI forces a panic inside the body of a
// public collapsed run and checks the process survives: the error chain
// carries a *PanicError with the worker's stack.
func TestWorkerPanicSurfacesThroughAPI(t *testing.T) {
	_, res := triangular(t)
	err := CollapsedForCtx(context.Background(), res, map[string]int64{"N": 200}, 4,
		Schedule{Kind: Dynamic, Chunk: 16},
		func(tid int, idx []int64) {
			if idx[0] == 100 {
				panic("body boom")
			}
		})
	if err == nil {
		t.Fatal("worker panic not reported")
	}
	pe := AsPanic(err)
	if pe == nil {
		t.Fatalf("no PanicError in chain: %v", err)
	}
	if pe.Value != "body boom" || !strings.Contains(string(pe.Stack), "robust_test") {
		t.Fatalf("PanicError incomplete: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
}

// TestCancellationThroughAPI cancels mid-run and checks the collapsed
// loop stops at the next chunk boundary with ErrCanceled.
func TestCancellationThroughAPI(t *testing.T) {
	_, res := triangular(t)
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	err := CollapsedForCtx(ctx, res, map[string]int64{"N": 2000}, 4,
		Schedule{Kind: Dynamic, Chunk: 8},
		func(tid int, idx []int64) {
			if seen.Add(1) == 500 {
				cancel()
			}
		})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	total := int64(2000) * 1999 / 2
	if seen.Load() >= total {
		t.Errorf("run completed (%d iterations) despite cancellation", seen.Load())
	}
}

// TestCollapsedForAutoDowngrade checks the degradation ladder end to
// end: a 5-deep simplex nest (ranking degree 5, beyond radicals) stays
// collapsed through the breakpoint-table retry, a non-affine nest runs
// uncollapsed, the same iterations are produced either way, and each
// rung is recorded in telemetry; a collapsible nest takes the fast path.
func TestCollapsedForAutoDowngrade(t *testing.T) {
	deep := MustNewNest([]string{"N"},
		L("a", "0", "N"), L("b", "0", "a+1"), L("c", "0", "b+1"),
		L("d", "0", "c+1"), L("e", "0", "d+1"))
	tel := NewTelemetry()
	var count atomic.Int64
	collapsed, err := CollapsedForAuto(context.Background(), deep, 5,
		map[string]int64{"N": 10}, 4, Schedule{Kind: Static},
		func(tid int, idx []int64) { count.Add(1) }, WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if !collapsed {
		t.Fatal("degree-5 nest did not collapse through the table retry")
	}
	// Serial reference count.
	var want int64
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b <= a; b++ {
			for c := int64(0); c <= b; c++ {
				for d := int64(0); d <= c; d++ {
					want += d + 1
				}
			}
		}
	}
	if count.Load() != want {
		t.Fatalf("table retry ran %d iterations, want %d", count.Load(), want)
	}
	if !strings.Contains(tel.Report(), "omp.table_retries") {
		t.Errorf("table retry not recorded in telemetry:\n%s", tel.Report())
	}

	// A non-affine bound is beyond every collapsed mode: the bottom rung
	// (uncollapsed worksharing) must run it. Built as a raw literal —
	// NewNest would reject it up front.
	quad := &Nest{Params: []string{"N"}, Loops: []Loop{
		L("i", "0", "N"), L("j", "0", "i*i+1"),
	}}
	tel = NewTelemetry()
	count.Store(0)
	collapsed, err = CollapsedForAuto(context.Background(), quad, 2,
		map[string]int64{"N": 10}, 4, Schedule{Kind: Static},
		func(tid int, idx []int64) { count.Add(1) }, WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if collapsed {
		t.Fatal("non-affine nest reported as collapsed")
	}
	want = 0
	for i := int64(0); i < 10; i++ {
		want += i*i + 1
	}
	if count.Load() != want {
		t.Fatalf("fallback ran %d iterations, want %d", count.Load(), want)
	}
	if !strings.Contains(tel.Report(), "omp.downgrades") {
		t.Errorf("downgrade not recorded in telemetry:\n%s", tel.Report())
	}

	// The applicable case must use the collapsed path.
	tri := MustNewNest([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
	count.Store(0)
	collapsed, err = CollapsedForAuto(nil, tri, 2, map[string]int64{"N": 50}, 4,
		Schedule{Kind: Static}, func(tid int, idx []int64) { count.Add(1) })
	if err != nil || !collapsed {
		t.Fatalf("triangular nest: collapsed=%v err=%v", collapsed, err)
	}
	if count.Load() != 50*49/2 {
		t.Fatalf("collapsed path ran %d iterations, want %d", count.Load(), 50*49/2)
	}
}

// TestVerifiedRecoveryUnderRootFaults is the acceptance scenario: with
// fault-injected root perturbation active, a WithVerify collapsed run
// still delivers exactly the right iteration tuples.
func TestVerifiedRecoveryUnderRootFaults(t *testing.T) {
	n := MustNewNest([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
	res, err := Collapse(n, 2, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(&faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 { return x + 1.5 },
	})
	defer restore()
	const N = 60
	var sum, count atomic.Int64
	err = CollapsedForCtx(context.Background(), res, map[string]int64{"N": N}, 4,
		Schedule{Kind: Dynamic, Chunk: 7},
		func(tid int, idx []int64) {
			i, j := idx[0], idx[1]
			if i < 0 || i >= N-1 || j <= i || j >= N {
				t.Errorf("tuple (%d,%d) out of domain", i, j)
			}
			sum.Add(i*1_000_003 + j)
			count.Add(1)
		})
	if err != nil {
		t.Fatal(err)
	}
	var wantSum, wantCount int64
	for i := int64(0); i < N-1; i++ {
		for j := i + 1; j < N; j++ {
			wantSum += i*1_000_003 + j
			wantCount++
		}
	}
	if count.Load() != wantCount || sum.Load() != wantSum {
		t.Fatalf("perturbed run visited wrong tuples: count %d/%d sum %d/%d",
			count.Load(), wantCount, sum.Load(), wantSum)
	}
}

// TestInjectedDelayCancellation uses the delay injector to make chunks
// slow enough that a deadline expires mid-run.
func TestInjectedDelayCancellation(t *testing.T) {
	_, res := triangular(t)
	restore := faults.Activate(&faults.Plan{ChunkDelay: 2 * time.Millisecond})
	defer restore()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := CollapsedForCtx(ctx, res, map[string]int64{"N": 3000}, 2,
		Schedule{Kind: Dynamic, Chunk: 4},
		func(tid int, idx []int64) {})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCompilePipelinePanicBecomesError checks the Collapse boundary
// guard: an internal invariant panic surfaces as an inspectable error,
// not a crash.
func TestCompilePipelinePanicBecomesError(t *testing.T) {
	// A nest literal violating Validate invariants (duplicate index
	// names) drives the pipeline into internal-invariant territory.
	bad := &Nest{Params: []string{"N"}, Loops: []nest.Loop{
		L("i", "0", "N"), L("i", "0", "N"),
	}}
	res, err := Collapse(bad, 2)
	if err == nil {
		t.Fatalf("duplicate-index nest collapsed: %v", res)
	}
	// Whether classified or recovered, it must be an error — reaching
	// here at all means no panic escaped.
}

// TestNonAffineClassified checks the applicability taxonomy through the
// public constructor.
func TestNonAffineClassified(t *testing.T) {
	_, err := NewNest([]string{"N"}, L("i", "0", "N"), L("j", "0", "i*i+1"))
	if !errors.Is(err, ErrNonAffine) {
		t.Fatalf("err = %v, want ErrNonAffine", err)
	}
	if !Collapsible(err) {
		t.Error("ErrNonAffine not reported as collapsibility failure")
	}
	deep := MustNewNest([]string{"N"},
		L("a", "0", "N"), L("b", "0", "a+1"), L("c", "0", "b+1"),
		L("d", "0", "c+1"), L("e", "0", "d+1"))
	_, err = Collapse(deep, 5)
	if !errors.Is(err, ErrDegreeTooHigh) {
		t.Fatalf("err = %v, want ErrDegreeTooHigh", err)
	}
	if !Collapsible(err) {
		t.Error("ErrDegreeTooHigh not reported as collapsibility failure")
	}
}
