package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx daemon answer, decoded from the uniform error
// document. RetryAfter carries the server's backoff hint when one was
// sent.
type APIError struct {
	Status     int
	Class      string
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d (%s): %s", e.Status, e.Class, e.Msg)
}

// Temporary reports whether the request may succeed on retry: overload
// shedding and drain answers are temporary, everything else (bad
// requests, applicability failures, open breakers) is not.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Client is the daemon's Go client: JSON requests with bounded retries,
// exponential backoff with full jitter, and Retry-After hints honored
// exactly (the server derives them from its token-bucket refill state,
// so obeying them is the fastest polite re-entry).
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 3;
	// negative disables retries).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff when the server sent no
	// Retry-After hint (default 50ms, doubling per attempt, full
	// jitter); MaxBackoff caps it (default 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Deadline, when positive, is sent as ?deadline_ms= on every
	// request so the server enforces it end to end.
	Deadline time.Duration

	// rnd is injectable for deterministic backoff tests.
	rnd func() float64
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 3
	}
	return c.MaxRetries
}

func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	base := c.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > maxB {
		d = maxB
	}
	rnd := c.rnd
	if rnd == nil {
		rnd = rand.Float64
	}
	// Full jitter: uniform in (0, d] — decorrelates a retrying fleet.
	return time.Duration(float64(d) * (0.5 + 0.5*rnd()))
}

// do posts req to path and decodes the answer into out, retrying
// temporary failures (429/503 and transport errors) with backoff.
func (c *Client) do(ctx context.Context, path string, req *Request, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	u := c.BaseURL + path
	if c.Deadline > 0 {
		u += "?deadline_ms=" + strconv.FormatInt(c.Deadline.Milliseconds(), 10)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(hreq)
		var hint time.Duration
		if err != nil {
			lastErr = err
		} else {
			lastErr, hint = decodeResponse(resp, out)
			if lastErr == nil {
				return nil
			}
			if ae, ok := lastErr.(*APIError); ok && !ae.Temporary() {
				return lastErr
			}
		}
		if attempt >= c.maxRetries() {
			return lastErr
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff(attempt, hint)):
		}
	}
}

// decodeResponse consumes one HTTP response: 2xx decodes into out,
// everything else decodes the error document into an *APIError.
func decodeResponse(resp *http.Response, out any) (error, time.Duration) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return nil, 0
		}
		return json.NewDecoder(resp.Body).Decode(out), 0
	}
	ae := &APIError{Status: resp.StatusCode, Class: "internal"}
	var doc ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err == nil {
		ae.Class = doc.Class
		ae.Msg = doc.Error
		if doc.RetryAfterS > 0 {
			ae.RetryAfter = time.Duration(doc.RetryAfterS * float64(time.Second))
		}
	}
	if ae.RetryAfter == 0 {
		ae.RetryAfter = ParseRetryAfter(resp.Header.Get("Retry-After"))
	}
	return ae, ae.RetryAfter
}

// ParseRetryAfter parses a Retry-After header value as decimal seconds
// (the daemon's fractional form or the RFC's integer form); malformed or
// absent values yield 0.
func ParseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	return 0
}

// Compile asks for the symbolic collapse of the request's nest.
func (c *Client) Compile(ctx context.Context, req *Request) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.do(ctx, "/v1/compile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Count returns the iteration count of the bound nest.
func (c *Client) Count(ctx context.Context, req *Request) (*CountResponse, error) {
	var out CountResponse
	if err := c.do(ctx, "/v1/count", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rank returns the 1-based collapsed rank of req.Index.
func (c *Client) Rank(ctx context.Context, req *Request) (*RankResponse, error) {
	var out RankResponse
	if err := c.do(ctx, "/v1/rank", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Unrank returns the iteration tuple at rank req.Pc.
func (c *Client) Unrank(ctx context.Context, req *Request) (*UnrankResponse, error) {
	var out UnrankResponse
	if err := c.do(ctx, "/v1/unrank", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Codegen emits collapsed source for the nest.
func (c *Client) Codegen(ctx context.Context, req *Request) (*CodegenResponse, error) {
	var out CodegenResponse
	if err := c.do(ctx, "/v1/codegen", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Execute runs the nest on the daemon's parallel runtime.
func (c *Client) Execute(ctx context.Context, req *Request) (*ExecuteResponse, error) {
	var out ExecuteResponse
	if err := c.do(ctx, "/v1/execute", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the readiness document; ready is false on 503.
func (c *Client) Healthz(ctx context.Context) (ready bool, doc map[string]any, err error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	u, err := url.JoinPath(c.BaseURL, "/healthz")
	if err != nil {
		return false, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, nil, err
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	doc = map[string]any{}
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode == http.StatusOK, doc, nil
}
