package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/kernels"
)

// TestOverheadQuick runs the suite at test sizes with a single fast rep
// and checks the report is complete and internally consistent, and that
// the JSON document round-trips.
func TestOverheadQuick(t *testing.T) {
	rep, err := Overhead(OverheadOptions{
		Quick:   true,
		Reps:    1,
		MinTime: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("Overhead: %v", err)
	}
	if len(rep.Rows) != len(kernels.All()) {
		t.Fatalf("report has %d kernels, want %d", len(rep.Rows), len(kernels.All()))
	}
	for _, row := range rep.Rows {
		if row.Iterations < 1 {
			t.Errorf("%s: empty collapsed space in report", row.Kernel)
		}
		if row.OriginalNsPerIter <= 0 || row.RecoverEveryNsPerIter <= 0 {
			t.Errorf("%s: non-positive baseline timings: %+v", row.Kernel, row)
		}
		if row.TotalBounds == 0 || row.SpecializedBounds > row.TotalBounds {
			t.Errorf("%s: bad specializer coverage %d/%d",
				row.Kernel, row.SpecializedBounds, row.TotalBounds)
		}
		if len(row.Schedules) != 3 {
			t.Errorf("%s: %d schedules, want 3", row.Kernel, len(row.Schedules))
		}
		for _, s := range row.Schedules {
			if s.PerIter.NsPerIter <= 0 || s.Ranges.NsPerIter <= 0 {
				t.Errorf("%s/%s: non-positive engine timings: %+v", row.Kernel, s.Schedule, s)
			}
			if s.Batches < 1 || s.MeanRunLen < 1 {
				t.Errorf("%s/%s: engine delivered no runs: %+v", row.Kernel, s.Schedule, s)
			}
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back OverheadReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) || back.Suite != "overhead" {
		t.Fatalf("round-tripped report lost rows: %d vs %d", len(back.Rows), len(rep.Rows))
	}
	if RenderOverhead(rep) == "" {
		t.Error("RenderOverhead returned empty output")
	}
}
