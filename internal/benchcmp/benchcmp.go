// Package benchcmp compares two BENCH_*.json benchmark documents
// (the overhead and compile suites of internal/experiments) and flags
// per-kernel regressions beyond a threshold. It is the engine behind
// cmd/benchdiff and the `make benchgate` regression gate.
//
// Comparisons are direction-aware: ns-per-iteration and microsecond
// costs regress when they go UP, speedup ratios regress when they go
// DOWN. Kernels whose problem parameters differ between the two runs
// are skipped with a note instead of producing apples-to-oranges
// deltas. Both schema v1 documents (no meta block) and schema v2
// documents (with one) load.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// Metric is one named measurement of one kernel.
type Metric struct {
	Name  string
	Value float64
	// HigherIsBetter flips the regression direction (speedups vs costs).
	HigherIsBetter bool
}

// Kernel is one kernel's measurements in one run.
type Kernel struct {
	Name    string
	Params  map[string]int64
	Metrics []Metric
}

// Run is a loaded benchmark document, normalized across suites.
type Run struct {
	Suite         string
	SchemaVersion int
	Meta          experiments.BenchMeta
	Kernels       []Kernel
}

// Kernel returns the named kernel, or nil.
func (r *Run) Kernel(name string) *Kernel {
	for i := range r.Kernels {
		if r.Kernels[i].Name == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// metric returns the named metric, or nil.
func (k *Kernel) metric(name string) *Metric {
	for i := range k.Metrics {
		if k.Metrics[i].Name == name {
			return &k.Metrics[i]
		}
	}
	return nil
}

// Load reads and decodes one benchmark document from path.
func Load(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}

// Decode decodes one benchmark document, sniffing the suite field.
func Decode(r io.Reader) (*Run, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var head struct {
		Suite string                `json:"suite"`
		Meta  experiments.BenchMeta `json:"meta"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("not a benchmark document: %w", err)
	}
	run := &Run{Suite: head.Suite, Meta: head.Meta, SchemaVersion: head.Meta.SchemaVersion}
	if run.SchemaVersion == 0 {
		run.SchemaVersion = 1 // pre-meta documents
	}
	switch head.Suite {
	case "overhead":
		var rep experiments.OverheadReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		if run.SchemaVersion == 1 {
			// Backfill what v1 carried at the top level.
			run.Meta.GoVersion = rep.GoVersion
			run.Meta.GOMAXPROCS = rep.GOMAXPROCS
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, overheadKernel(row))
		}
	case "compile":
		var rep experiments.CompileReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		if run.SchemaVersion == 1 {
			run.Meta.GoVersion = rep.GoVersion
			run.Meta.GOMAXPROCS = rep.GOMAXPROCS
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, compileKernel(row))
		}
	case "serve":
		var rep experiments.ServeReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, serveKernel(row))
		}
	case "dist":
		var rep experiments.DistReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, distKernel(row))
		}
	case "invert":
		var rep experiments.InvertReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, invertKernels(row)...)
		}
	case "autotune":
		var rep experiments.AutotuneReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, err
		}
		for _, row := range rep.Rows {
			run.Kernels = append(run.Kernels, autotuneKernel(row))
		}
	case "":
		return nil, fmt.Errorf("document has no suite field")
	default:
		return nil, fmt.Errorf("unknown suite %q", head.Suite)
	}
	return run, nil
}

// overheadKernel flattens one overhead row into named metrics.
func overheadKernel(row experiments.OverheadRow) Kernel {
	k := Kernel{Name: row.Kernel, Params: row.Params}
	add := func(name string, v float64, higher bool) {
		k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
	}
	add("original_ns_per_iter", row.OriginalNsPerIter, false)
	add("recover_every_ns_per_iter", row.RecoverEveryNsPerIter, false)
	for _, s := range row.Schedules {
		add("per_iter_ns["+s.Schedule+"]", s.PerIter.NsPerIter, false)
		add("ranges_ns["+s.Schedule+"]", s.Ranges.NsPerIter, false)
		add("speedup_ranges["+s.Schedule+"]", s.SpeedupRanges, true)
	}
	return k
}

// compileKernel flattens one compile row into named metrics. Compile
// rows have no params map; depth and collapse count stand in as the
// comparability key.
func compileKernel(row experiments.CompileRow) Kernel {
	k := Kernel{
		Name:   row.Kernel,
		Params: map[string]int64{"depth": int64(row.Depth), "collapse": int64(row.C)},
	}
	add := func(name string, v float64, higher bool) {
		k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
	}
	add("cold_serial_us", row.ColdSerialUs, false)
	add("cold_parallel_us", row.ColdParallelUs, false)
	add("cached_us", row.CachedUs, false)
	add("speedup_parallel_vs_serial", row.SpeedupParallel, true)
	add("speedup_cached_vs_cold", row.SpeedupCached, true)
	return k
}

// serveKernel flattens one serving-trajectory phase into named metrics.
// The target QPS stands in as the comparability key: two runs are only
// apples-to-apples at the same offered load.
func serveKernel(row experiments.ServeRow) Kernel {
	k := Kernel{
		Name:   "phase:" + row.Phase,
		Params: map[string]int64{"target_qps": int64(row.TargetQPS)},
	}
	add := func(name string, v float64, higher bool) {
		k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
	}
	add("achieved_qps", row.AchievedQPS, true)
	add("p50_ms", row.P50Ms, false)
	add("p99_ms", row.P99Ms, false)
	// More shedding at the same offered load means less served capacity.
	add("shed_rate", row.ShedRate, false)
	return k
}

// invertKernels flattens one invert row into one comparison unit per
// chunk size: nest shape and chunk name the unit (kernel pairing is by
// name), problem size is the comparability key. Throughput is
// higher-is-better; the gated machine-independent ratios are the
// speedups over per-pc search.
func invertKernels(row experiments.InvertRow) []Kernel {
	var ks []Kernel
	for _, c := range row.Chunks {
		k := Kernel{
			Name:   fmt.Sprintf("invert:%s/chunk=%d", row.Nest, c.ChunkPC),
			Params: row.Params,
		}
		add := func(name string, v float64, higher bool) {
			k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
		}
		add("search_recoveries_per_sec", c.SearchRecPerSec, true)
		add("table_recoveries_per_sec", c.TableRecPerSec, true)
		add("batch_recoveries_per_sec", c.BatchRecPerSec, true)
		add("speedup_table_vs_search", c.SpeedupTable, true)
		add("speedup_batch_vs_search", c.SpeedupBatch, true)
		ks = append(ks, k)
	}
	return ks
}

// autotuneKernel flattens one autotune row into named metrics. Absolute
// wall times are host-dependent; the gated machine-independent metrics
// are the two ratios — auto over the best hand-picked choice (lower is
// better, 1.0 = the planner matched the optimum) and the worst choice
// over auto (higher is better, what guessing wrong costs).
func autotuneKernel(row experiments.AutotuneRow) Kernel {
	k := Kernel{Name: "autotune:" + row.Kernel, Params: row.Params}
	add := func(name string, v float64, higher bool) {
		k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
	}
	add("auto_sec", row.AutoSec, false)
	add("best_sec", row.BestSec, false)
	add("auto_vs_best", row.AutoVsBest, false)
	add("worst_vs_auto", row.WorstVsAuto, true)
	return k
}

// distKernel flattens one sharded-execution scenario into named
// metrics. Worker count and problem size are the comparability key.
func distKernel(row experiments.DistRow) Kernel {
	k := Kernel{
		Name:   "dist:" + row.Scenario,
		Params: map[string]int64{"workers": int64(row.Workers), "total": row.Total},
	}
	add := func(name string, v float64, higher bool) {
		k.Metrics = append(k.Metrics, Metric{Name: name, Value: v, HigherIsBetter: higher})
	}
	add("miter_per_sec", row.MIterPerSec, true)
	// Recovery/journal overhead versus the clean run at the same worker
	// count (absent on the clean rows themselves; a non-positive old
	// value is skipped by Compare).
	add("overhead_pct", row.OverheadPct, false)
	return k
}

// Options configure a comparison.
type Options struct {
	// ThresholdPct is the default allowed worsening, percent (20 = a
	// metric may be up to 20% worse before it counts as a regression).
	ThresholdPct float64
	// KernelThresholdPct overrides the threshold per kernel name.
	KernelThresholdPct map[string]float64
	// MetricFilter, when non-empty, restricts the comparison to metric
	// names containing any of these substrings (e.g. only "speedup"
	// metrics for a machine-independent gate).
	MetricFilter []string
}

// Delta is one metric's old-vs-new comparison. WorsePct is the signed
// worsening in percent — positive means the new run is worse in the
// metric's bad direction, regardless of which direction that is.
type Delta struct {
	Kernel         string
	Metric         string
	Old, New       float64
	WorsePct       float64
	ThresholdPct   float64
	HigherIsBetter bool
	Regression     bool
}

// Report is the outcome of one comparison.
type Report struct {
	Suite   string
	Deltas  []Delta
	Skipped []string // kernels or metrics not compared, with reasons
}

// Regressions returns only the deltas beyond threshold.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two runs of the same suite.
func Compare(oldRun, newRun *Run, opts Options) (*Report, error) {
	if oldRun.Suite != newRun.Suite {
		return nil, fmt.Errorf("suite mismatch: %q vs %q", oldRun.Suite, newRun.Suite)
	}
	if opts.ThresholdPct <= 0 {
		opts.ThresholdPct = 20
	}
	rep := &Report{Suite: oldRun.Suite}
	for _, ok := range oldRun.Kernels {
		nk := newRun.Kernel(ok.Name)
		if nk == nil {
			rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: absent from new run", ok.Name))
			continue
		}
		if !sameParams(ok.Params, nk.Params) {
			rep.Skipped = append(rep.Skipped,
				fmt.Sprintf("%s: params differ (%s vs %s) — not comparable",
					ok.Name, renderParams(ok.Params), renderParams(nk.Params)))
			continue
		}
		threshold := opts.ThresholdPct
		if t, has := opts.KernelThresholdPct[ok.Name]; has {
			threshold = t
		}
		for _, om := range ok.Metrics {
			if !metricSelected(om.Name, opts.MetricFilter) {
				continue
			}
			nm := nk.metric(om.Name)
			if nm == nil {
				rep.Skipped = append(rep.Skipped,
					fmt.Sprintf("%s/%s: absent from new run", ok.Name, om.Name))
				continue
			}
			if om.Value <= 0 {
				rep.Skipped = append(rep.Skipped,
					fmt.Sprintf("%s/%s: old value %g not comparable", ok.Name, om.Name, om.Value))
				continue
			}
			d := Delta{
				Kernel: ok.Name, Metric: om.Name,
				Old: om.Value, New: nm.Value,
				ThresholdPct:   threshold,
				HigherIsBetter: om.HigherIsBetter,
			}
			if om.HigherIsBetter {
				d.WorsePct = (om.Value - nm.Value) / om.Value * 100
			} else {
				d.WorsePct = (nm.Value - om.Value) / om.Value * 100
			}
			d.Regression = d.WorsePct > threshold
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for _, nk := range newRun.Kernels {
		if oldRun.Kernel(nk.Name) == nil {
			rep.Skipped = append(rep.Skipped, fmt.Sprintf("%s: new kernel, no baseline", nk.Name))
		}
	}
	return rep, nil
}

func metricSelected(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(name, f) {
			return true
		}
	}
	return false
}

func sameParams(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func renderParams(p map[string]int64) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, p[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Render writes the report as an aligned table: every compared metric
// with its worsening percentage, regressions flagged, skips listed.
func Render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "benchdiff: suite %s, %d comparisons, %d regressions\n",
		rep.Suite, len(rep.Deltas), len(rep.Regressions()))
	if len(rep.Deltas) > 0 {
		fmt.Fprintf(w, "%-18s %-28s %12s %12s %9s %s\n",
			"kernel", "metric", "old", "new", "worse%", "")
		for _, d := range rep.Deltas {
			flag := ""
			if d.Regression {
				flag = fmt.Sprintf("REGRESSION (>%g%%)", d.ThresholdPct)
			}
			fmt.Fprintf(w, "%-18s %-28s %12.4g %12.4g %+8.1f%% %s\n",
				d.Kernel, d.Metric, d.Old, d.New, d.WorsePct, flag)
		}
	}
	for _, s := range rep.Skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
}
