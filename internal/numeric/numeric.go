// Package numeric provides the exact-arithmetic substrate shared by the
// symbolic layers of the library: Bernoulli numbers and binomial
// coefficients for Faulhaber summation, overflow-checked int64 arithmetic
// for the fast polynomial-evaluation path, and small helpers over
// math/big rationals.
package numeric

import (
	"math/big"
	"sync"
)

// Rat constructs a big.Rat from an int64 numerator and denominator.
// It panics if den is zero.
func Rat(num, den int64) *big.Rat {
	if den == 0 {
		panic("numeric: zero denominator")
	}
	return big.NewRat(num, den)
}

// RatInt constructs a big.Rat holding the integer n.
func RatInt(n int64) *big.Rat { return new(big.Rat).SetInt64(n) }

// RatIsInt reports whether r is an integer.
func RatIsInt(r *big.Rat) bool { return r.IsInt() }

// RatInt64 returns the value of r as an int64 if r is an integer that
// fits; ok is false otherwise.
func RatInt64(r *big.Rat) (v int64, ok bool) {
	if !r.IsInt() {
		return 0, false
	}
	n := r.Num()
	if !n.IsInt64() {
		return 0, false
	}
	return n.Int64(), true
}

// binomialKey is the comparable cache key of C(n, k); a struct key hashes
// without the fmt.Sprintf allocation the old "n,k" string key paid per
// lookup.
type binomialKey struct{ n, k int }

var binomialCache sync.Map // binomialKey -> *big.Int (cached values are never mutated)

// Binomial returns the binomial coefficient C(n, k) as a big.Int.
// It returns zero for k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	key := binomialKey{n, k}
	if v, ok := binomialCache.Load(key); ok {
		return new(big.Int).Set(v.(*big.Int))
	}
	v := new(big.Int).Binomial(int64(n), int64(k))
	binomialCache.Store(key, v)
	return new(big.Int).Set(v)
}

var (
	bernoulliMu   sync.Mutex
	bernoulliMemo []*big.Rat // B⁻ convention: B1 = -1/2
)

// Bernoulli returns the n-th Bernoulli number in the B⁻ convention
// (B1 = -1/2). The sequence starts 1, -1/2, 1/6, 0, -1/30, ...
func Bernoulli(n int) *big.Rat {
	if n < 0 {
		panic("numeric: negative Bernoulli index")
	}
	bernoulliMu.Lock()
	defer bernoulliMu.Unlock()
	for len(bernoulliMemo) <= n {
		m := len(bernoulliMemo)
		if m == 0 {
			bernoulliMemo = append(bernoulliMemo, big.NewRat(1, 1))
			continue
		}
		// B_m = -(1/(m+1)) * sum_{j=0}^{m-1} C(m+1, j) B_j
		sum := new(big.Rat)
		for j := 0; j < m; j++ {
			term := new(big.Rat).SetInt(Binomial(m+1, j))
			term.Mul(term, bernoulliMemo[j])
			sum.Add(sum, term)
		}
		sum.Mul(sum, big.NewRat(-1, int64(m+1)))
		bernoulliMemo = append(bernoulliMemo, sum)
	}
	return new(big.Rat).Set(bernoulliMemo[n])
}

// BernoulliPlus returns the n-th Bernoulli number in the B⁺ convention
// (B1 = +1/2), which is the one appearing in Faulhaber's formula for
// sums from 1 to n.
func BernoulliPlus(n int) *big.Rat {
	b := Bernoulli(n)
	if n == 1 {
		b.Neg(b)
	}
	return b
}

// AddInt64 returns a+b and reports whether the addition overflowed.
func AddInt64(a, b int64) (sum int64, ok bool) {
	sum = a + b
	if (b > 0 && sum < a) || (b < 0 && sum > a) {
		return 0, false
	}
	return sum, true
}

// MulInt64 returns a*b and reports whether the multiplication overflowed.
func MulInt64(a, b int64) (prod int64, ok bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	prod = a * b
	if prod/b != a {
		return 0, false
	}
	// Catch the MinInt64 * -1 case, where prod/b == a accidentally holds.
	if (a == -1 && b == minInt64) || (b == -1 && a == minInt64) {
		return 0, false
	}
	return prod, true
}

const minInt64 = -1 << 63

// PowInt64 returns base**exp (exp >= 0) and reports overflow.
func PowInt64(base int64, exp int) (int64, bool) {
	if exp < 0 {
		panic("numeric: negative exponent")
	}
	result := int64(1)
	for i := 0; i < exp; i++ {
		var ok bool
		result, ok = MulInt64(result, base)
		if !ok {
			return 0, false
		}
	}
	return result, true
}

// FloorDivInt64 returns floor(a/b) for b != 0.
func FloorDivInt64(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDivInt64 returns ceil(a/b) for b != 0.
func CeilDivInt64(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// GCDInt64 returns the non-negative greatest common divisor of a and b.
// GCDInt64(0, 0) is 0.
func GCDInt64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCMBig returns lcm(a, b) for big.Ints; lcm(0, x) is 0.
func LCMBig(a, b *big.Int) *big.Int {
	if a.Sign() == 0 || b.Sign() == 0 {
		return big.NewInt(0)
	}
	g := new(big.Int).GCD(nil, nil, new(big.Int).Abs(a), new(big.Int).Abs(b))
	l := new(big.Int).Div(new(big.Int).Abs(a), g)
	return l.Mul(l, new(big.Int).Abs(b))
}
