package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/unrank"
)

func correlationResult(t *testing.T) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "i+1", "N"),
		nest.L("k", "0", "N"),
	)
	return core.MustCollapse(n, 2, unrank.Options{})
}

func tetraResult(t *testing.T) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
	)
	return core.MustCollapse(n, 3, unrank.Options{})
}

// Fig. 3: per-iteration recovery with sqrt/floor of the quadratic root.
func TestEmitCPerIterationCorrelation(t *testing.T) {
	r := correlationResult(t)
	src, err := EmitC(r, Options{Scheme: PerIteration, Body: "a[i][j] += b[k][i]*c[k][j];"})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"#pragma omp parallel for private(i, j, k) schedule(static)",
		"for (pc = 1 ; pc <= (N*N - N)/2 ; pc++)",
		"i = floor(creal(",
		"csqrt(",
		"j = ",
		"for (k = 0 ; k < N ; k++)",
		"a[i][j] += b[k][i]*c[k][j];",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("missing fragment %q in:\n%s", frag, src)
		}
	}
}

// Fig. 4: first-iteration recovery plus incrementation.
func TestEmitCFirstIterationCorrelation(t *testing.T) {
	r := correlationResult(t)
	src, err := EmitC(r, Options{Scheme: FirstIteration})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"first_iteration = 1;",
		"firstprivate(first_iteration)",
		"if (first_iteration) {",
		"first_iteration = 0;",
		"j++;",
		"if (j >= N) {",
		"i++;",
		"j = i + 1;",
		"S(i, j, k);",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("missing fragment %q in:\n%s", frag, src)
		}
	}
}

// Fig. 7: 3-deep collapse with cpow/csqrt complex recovery.
func TestEmitCTetraUsesComplexFunctions(t *testing.T) {
	r := tetraResult(t)
	src, err := EmitC(r, Options{Scheme: PerIteration})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"for (pc = 1 ; pc <= (N*N*N - N)/6 ; pc++)",
		"cpow(",
		"csqrt(",
		"i = floor(creal(",
		"j = floor(creal(",
		"S(i, j, k);",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("missing fragment %q in:\n%s", frag, src)
		}
	}
	// The last index is recovered by the direct formula, not a root.
	if strings.Count(src, "floor(creal(") != 2 {
		t.Errorf("expected exactly 2 radical recoveries:\n%s", src)
	}
}

func TestEmitCChunked(t *testing.T) {
	r := correlationResult(t)
	src, err := EmitC(r, Options{Scheme: Chunked, Chunk: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"schedule(static, 128)",
		"if ((pc-1) % 128 == 0) {",
		"j++;",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("missing fragment %q in:\n%s", frag, src)
		}
	}
}

func TestEmitCSIMDAndWarp(t *testing.T) {
	r := tetraResult(t)
	simd, err := EmitC(r, Options{Scheme: SIMD, VLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"#pragma omp simd", "T[v-pc]", "pc += 4"} {
		if !strings.Contains(simd, frag) {
			t.Errorf("SIMD missing %q in:\n%s", frag, simd)
		}
	}
	warp, err := EmitC(r, Options{Scheme: Warp, Warp: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"for (thread = 0 ; thread < 32", "pc += 32", "if (pc == thread+1)"} {
		if !strings.Contains(warp, frag) {
			t.Errorf("warp missing %q in:\n%s", frag, warp)
		}
	}
	// SIMD/warp require full collapse.
	partial := correlationResult(t)
	if _, err := EmitC(partial, Options{Scheme: SIMD}); err == nil {
		t.Error("SIMD with partial collapse accepted")
	}
	if _, err := EmitC(partial, Options{Scheme: Warp}); err == nil {
		t.Error("warp with partial collapse accepted")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		PerIteration: "per-iteration", FirstIteration: "first-iteration",
		Chunked: "chunked", SIMD: "simd", Warp: "warp",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q", int(s), s.String())
		}
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme renders empty")
	}
}

// TestEmitGoCompilesAndMatchesEnumeration generates Go code for the
// correlation and tetrahedral nests, compiles it with the host
// toolchain, runs it, and compares the produced iteration order with
// brute-force enumeration — an end-to-end check of the whole pipeline.
func TestEmitGoCompilesAndMatchesEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping toolchain round-trip in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	r2 := correlationResult(t)
	f2, err := EmitGo(r2, Options{Scheme: PerIteration, FuncName: "Corr"})
	if err != nil {
		t.Fatal(err)
	}
	r3 := tetraResult(t)
	f3, err := EmitGo(r3, Options{Scheme: FirstIteration, FuncName: "Tetra"})
	if err != nil {
		t.Fatal(err)
	}
	mainSrc := `
func main() {
	Corr(7, func(idx ...int64) { fmt.Println("C", idx[0], idx[1], idx[2]) })
	Tetra(6, func(idx ...int64) { fmt.Println("T", idx[0], idx[1], idx[2]) })
}
`
	file := GoFile("main", f2, f3, mainSrc)
	// GoFile only adds math imports; add fmt.
	file = strings.Replace(file, "import (", "import (\n\t\"fmt\"", 1)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- generated source ---\n%s", err, out, file)
	}

	// Compare lines in order against brute-force enumeration.
	gotLines := strings.Split(strings.TrimSpace(string(out)), "\n")
	var wantLines []string
	r2.Nest.MustBind(map[string]int64{"N": 7}).Enumerate(func(idx []int64) bool {
		wantLines = append(wantLines, "C "+fmtInts(idx))
		return true
	})
	r3.Nest.MustBind(map[string]int64{"N": 6}).Enumerate(func(idx []int64) bool {
		wantLines = append(wantLines, "T "+fmtInts(idx))
		return true
	})
	if len(gotLines) != len(wantLines) {
		t.Fatalf("generated program printed %d lines, want %d\n%s", len(gotLines), len(wantLines), out)
	}
	for i := range wantLines {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("line %d: got %q, want %q", i, gotLines[i], wantLines[i])
		}
	}
}

func fmtInts(idx []int64) string {
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, " ")
}
