package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeOnce GETs one path and returns the body ("" on any error).
func scrapeOnce(addr net.Addr, path string) string {
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ""
	}
	return string(body)
}

// TestServeFlag runs -stats with -serve and scrapes the plane while it
// is up: the exposition must be valid OpenMetrics and, once the run has
// progressed, carry the compile/cache/omp/unrank series; /healthz and
// /snapshot must answer.
func TestServeFlag(t *testing.T) {
	o := base(writeInput(t))
	o.stats = true
	o.statsN = 40
	o.serve = "127.0.0.1:0"
	o.hold = 1500 * time.Millisecond
	addrCh := make(chan net.Addr, 1)
	o.serveReady = func(a net.Addr) { addrCh <- a }

	// All scraping happens inside the capture window (run prints the
	// -stats report to stdout); assertions run after it returns.
	var healthz, exposition, snapshot string
	_, err := capture(t, func() error {
		runErr := make(chan error, 1)
		go func() { runErr <- run(o) }()
		var addr net.Addr
		select {
		case addr = <-addrCh:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("plane never came up")
		}
		healthz = scrapeOnce(addr, "/healthz")
		// Poll /metrics until the run's series appear (the hold window
		// keeps the plane up past run end, so this converges).
		deadline := time.Now().Add(8 * time.Second)
		for time.Now().Before(deadline) {
			exposition = scrapeOnce(addr, "/metrics")
			if strings.Contains(exposition, "omp_") && strings.Contains(exposition, "unrank_") {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		snapshot = scrapeOnce(addr, "/snapshot")
		return <-runErr
	})
	if err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(healthz, "ok") {
		t.Errorf("/healthz = %q", healthz)
	}
	fams, perr := obs.ParseExposition(strings.NewReader(exposition))
	if perr != nil {
		t.Fatalf("served exposition invalid: %v", perr)
	}
	for _, prefix := range []string{"compile_", "cache_", "omp_", "unrank_"} {
		found := false
		for name := range fams {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* family in served exposition; families: %v", prefix, obs.FamilyNames(fams))
		}
	}
	if !strings.Contains(snapshot, `"counters"`) {
		t.Errorf("/snapshot missing counters: %q", snapshot)
	}
}

// TestServeFlagBadAddr: an unbindable address fails the run up front.
func TestServeFlagBadAddr(t *testing.T) {
	o := base(writeInput(t))
	o.serve = "256.256.256.256:1"
	if _, err := capture(t, func() error { return run(o) }); err == nil {
		t.Error("bad -serve address accepted")
	}
}
