package omp

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

func liveResult(t *testing.T) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	res, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLiveProgressGauges runs the instrumented executor and checks the
// live per-worker series: chunk/iteration counters labelled by tid sum
// to the run totals, the in-flight markers clear at run end, and the
// unrank counters published incrementally match the aggregated stats
// exactly (no double counting between the per-chunk deltas and the
// end-of-run remainder).
func TestLiveProgressGauges(t *testing.T) {
	tel := telemetry.New()
	res := liveResult(t)
	threads := 4
	cs, err := CollapsedForTelemetry(res, map[string]int64{"N": 60}, threads,
		Schedule{Kind: StaticChunk, Chunk: 37}, tel, func(tid int, idx []int64) {})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if got := snap.Gauges["omp.team_size"]; got != int64(threads) {
		t.Errorf("omp.team_size = %d, want %d", got, threads)
	}
	sched := StaticChunk.String()
	var chunks, iters int64
	for tid := 0; tid < threads; tid++ {
		chunks += snap.Counters[fmt.Sprintf("omp.worker_chunks{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]
		iters += snap.Counters[fmt.Sprintf("omp.worker_iterations{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]
		if since := snap.Gauges[fmt.Sprintf("omp.worker_inflight_since_ns{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]; since != 0 {
			t.Errorf("worker %d inflight marker %d after run end, want 0", tid, since)
		}
	}
	var wantChunks int64
	for _, st := range cs.PerThread {
		wantChunks += st.Chunks
	}
	if chunks != wantChunks {
		t.Errorf("live chunk counters sum to %d, want %d", chunks, wantChunks)
	}
	if iters != cs.Total {
		t.Errorf("live iteration counters sum to %d, want %d", iters, cs.Total)
	}
	if got := snap.Counters["unrank.root_evals"]; got != cs.Stats.RootEvals {
		t.Errorf("unrank.root_evals = %d, want %d (incremental publish must not double count)",
			got, cs.Stats.RootEvals)
	}
	if got := snap.Counters["unrank.corrections"]; got != cs.Stats.Corrections {
		t.Errorf("unrank.corrections = %d, want %d", got, cs.Stats.Corrections)
	}
}

// TestLiveGaugesMidRun scrapes the registry from inside the body of a
// running collapsed loop and checks progress is visible before the run
// finishes — the property the obs plane's /metrics endpoint depends on.
func TestLiveGaugesMidRun(t *testing.T) {
	tel := telemetry.New()
	res := liveResult(t)
	var scraped atomic.Bool
	var midIters int64
	threads := 2
	sched := StaticChunk.String()
	_, err := CollapsedForTelemetry(res, map[string]int64{"N": 120}, threads,
		Schedule{Kind: StaticChunk, Chunk: 16}, tel, func(tid int, idx []int64) {
			if idx[0] > 60 && scraped.CompareAndSwap(false, true) {
				snap := tel.Snapshot()
				for tid := 0; tid < threads; tid++ {
					midIters += snap.Counters[fmt.Sprintf("omp.worker_iterations{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if !scraped.Load() {
		t.Fatal("scrape body never ran")
	}
	if midIters <= 0 {
		t.Errorf("mid-run scrape saw %d iterations, want > 0", midIters)
	}
}

// TestRangesLiveGauges checks the range-batched engine publishes the
// same live series.
func TestRangesLiveGauges(t *testing.T) {
	tel := telemetry.New()
	res := liveResult(t)
	_, err := CollapsedForRangesStats(res, map[string]int64{"N": 50}, 3,
		Schedule{Kind: Static}, tel, func(tid int, pc int64, prefix []int64, lo, hi int64) {})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	sched := Static.String()
	var iters int64
	for tid := 0; tid < 3; tid++ {
		iters += snap.Counters[fmt.Sprintf("omp.worker_iterations{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]
	}
	want := snap.Counters["omp.iterations"]
	if want == 0 || iters != want {
		t.Errorf("per-worker live iterations %d, want omp.iterations %d (nonzero)", iters, want)
	}
}
