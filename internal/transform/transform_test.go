package transform

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/nest"
	"repro/internal/nest/nesttest"
)

// checkBijection verifies that the transformed nest has the same number
// of points as the original and that the Map sends its points exactly
// onto the original points.
func checkBijection(t *testing.T, tr *Transformed, params map[string]int64) {
	t.Helper()
	srcInst := tr.Source().MustBind(params)
	dstInst := tr.Nest.MustBind(params)
	if err := dstInst.CheckRegular(); err != nil {
		t.Fatalf("transformed nest irregular: %v", err)
	}
	var want []string
	srcInst.Enumerate(func(idx []int64) bool {
		want = append(want, tupleKey(idx))
		return true
	})
	m, err := tr.BindMap(params)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	buf := make([]int64, tr.Nest.Depth())
	dstInst.Enumerate(func(idx []int64) bool {
		m(idx, buf)
		got = append(got, tupleKey(buf))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("point counts differ: %d vs %d", len(got), len(want))
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("point sets differ at %d: %s vs %s", i, want[i], got[i])
		}
	}
}

func tupleKey(idx []int64) string {
	s := ""
	for _, v := range idx {
		s += "," + itoa(v)
	}
	return s
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func correlationNest() *nest.Nest {
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
}

func TestNormalizeCorrelation(t *testing.T) {
	tr, err := Normalize(correlationNest())
	if err != nil {
		t.Fatal(err)
	}
	// j' = j - (i+1): bounds become 0 .. N-1-i.
	if got := tr.Nest.Loops[1].Lower.String(); got != "0" {
		t.Errorf("normalized lower = %s", got)
	}
	if got := tr.Nest.Loops[1].Upper.String(); got != "N - i - 1" {
		t.Errorf("normalized upper = %s", got)
	}
	checkBijection(t, tr, map[string]int64{"N": 9})
}

func TestNormalizeRandomNests(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n, params := nesttest.RandRegularNest(r)
		tr, err := Normalize(n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k, l := range tr.Nest.Loops {
			if !l.Lower.IsZero() {
				t.Fatalf("trial %d: level %d lower = %s", trial, k, l.Lower)
			}
		}
		checkBijection(t, tr, params)
	}
	n, params := nesttest.NonZeroLowerNest()
	tr, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	checkBijection(t, tr, params)
}

func TestSkewProducesRhomboid(t *testing.T) {
	// Skewing the rectangle {i: 0..N, j: 0..M} by j' = j + i gives the
	// rhomboid {i: 0..N, j': i..i+M}.
	rect := nest.MustNew([]string{"N", "M"}, nest.L("i", "0", "N"), nest.L("j", "0", "M"))
	tr, err := Skew(rect, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Nest.Loops[1].Lower.String(); got != "i" {
		t.Errorf("skewed lower = %s", got)
	}
	if got := tr.Nest.Loops[1].Upper.String(); got != "M + i" {
		t.Errorf("skewed upper = %s", got)
	}
	checkBijection(t, tr, map[string]int64{"N": 6, "M": 4})
}

func TestSkewDeeperBoundsSubstituted(t *testing.T) {
	// 3-deep: k's bounds reference j; after skewing j they must
	// reference j - i.
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "N"),
		nest.L("k", "j", "j+3"),
	)
	tr, err := Skew(n, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Nest.Loops[2].Lower.String(); got != "-i + j" && got != "j - i" {
		t.Errorf("deep lower = %s", got)
	}
	checkBijection(t, tr, map[string]int64{"N": 5})
}

func TestSkewNegativeFactorAndErrors(t *testing.T) {
	rhomb := nest.MustNew([]string{"N", "M"}, nest.L("i", "0", "N"), nest.L("j", "i", "i+M"))
	// Unskew the rhomboid back to the rectangle.
	tr, err := Skew(rhomb, 1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Nest.Loops[1].Lower.String(); got != "0" {
		t.Errorf("unskewed lower = %s", got)
	}
	checkBijection(t, tr, map[string]int64{"N": 5, "M": 3})

	if _, err := Skew(rhomb, 0, 0, 1); err == nil {
		t.Error("skew wrt itself accepted")
	}
	if _, err := Skew(rhomb, 0, 1, 1); err == nil {
		t.Error("skew wrt inner loop accepted")
	}
	if _, err := Skew(rhomb, 5, 0, 1); err == nil {
		t.Error("skew of missing level accepted")
	}
}

func TestReverse(t *testing.T) {
	tri := correlationNest()
	tr, err := Reverse(tri, 0)
	if err != nil {
		t.Fatal(err)
	}
	// i' in [1-(N-1), 1-0) = [2-N, 1); inner bounds substitute i = -i'.
	checkBijection(t, tr, map[string]int64{"N": 8})
	// Reversing the inner loop too.
	tr2, err := Reverse(tr.Nest, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkBijectionVia(t, tr2, tr, map[string]int64{"N": 8}, tri)
	if _, err := Reverse(tri, 9); err == nil {
		t.Error("reverse of missing level accepted")
	}
}

// checkBijectionVia composes two transforms and checks against the
// original source nest.
func checkBijectionVia(t *testing.T, second, first *Transformed, params map[string]int64, orig *nest.Nest) {
	t.Helper()
	m2, err := second.BindMap(params)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := first.BindMap(params)
	if err != nil {
		t.Fatal(err)
	}
	m := Compose(m2, m1)
	var want, got []string
	orig.MustBind(params).Enumerate(func(idx []int64) bool {
		want = append(want, tupleKey(idx))
		return true
	})
	buf := make([]int64, orig.Depth())
	second.Nest.MustBind(params).Enumerate(func(idx []int64) bool {
		m(idx, buf)
		got = append(got, tupleKey(buf))
		return true
	})
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		t.Fatalf("counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sets differ at %d", i)
		}
	}
}

func TestIdentityAndCompose(t *testing.T) {
	id := Identity(3)
	src := []int64{4, 5, 6}
	dst := make([]int64, 3)
	id(src, dst)
	if dst[0] != 4 || dst[2] != 6 {
		t.Error("identity broken")
	}
	double := Compose(id, id)
	double(src, dst)
	if dst[1] != 5 {
		t.Error("compose broken")
	}
}
