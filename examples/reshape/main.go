// Iteration-space reshaping and fusion — the extensions sketched in the
// paper's conclusion (§IX), built on ranking/unranking.
//
// Part 1 drives a triangular computation from a rectangular loop: the
// rectangle's (x, y) tuples map rank-to-rank onto the triangle's (i, j)
// tuples, so a GPU-grid-shaped or OpenMP-collapse-friendly loop executes
// a non-rectangular computation with zero imbalance.
//
// Part 2 fuses a triangle, a tetrahedron and a flat loop into a single
// rank range and worksharing-balances across all three at once.
//
//	go run ./examples/reshape
package main

import (
	"fmt"
	"log"

	nonrect "repro"
)

func main() {
	// --- Part 1: triangle driven through a rectangle -----------------
	// Triangle {0<=i<N-1, i+1<=j<N} with N=65 has 2080 points = 32 x 65.
	tri := nonrect.MustNewNest([]string{"N"},
		nonrect.L("i", "0", "N-1"),
		nonrect.L("j", "i+1", "N"),
	)
	rect := nonrect.MustNewNest([]string{"A", "B"},
		nonrect.L("x", "0", "A"),
		nonrect.L("y", "0", "B"),
	)
	triRes, err := nonrect.Collapse(tri, 2)
	if err != nil {
		log.Fatal(err)
	}
	rectRes, err := nonrect.Collapse(rect, 2)
	if err != nil {
		log.Fatal(err)
	}
	triB, err := triRes.Unranker.Bind(map[string]int64{"N": 65})
	if err != nil {
		log.Fatal(err)
	}
	rectB, err := rectRes.Unranker.Bind(map[string]int64{"A": 32, "B": 65})
	if err != nil {
		log.Fatal(err)
	}
	m, err := nonrect.NewMapping(rectB, triB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rectangle 32x65 <-> triangle N=65: %d points each\n", m.Total())

	// Execute the triangular body by iterating the rectangle.
	var sum int64
	tIdx := make([]int64, 2)
	if err := m.ForEachPair(func(rectIdx, triIdx []int64) bool {
		copy(tIdx, triIdx)
		sum += tIdx[0] + tIdx[1] // "triangular work" indexed by (i, j)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	var want int64
	for i := int64(0); i < 64; i++ {
		for j := i + 1; j < 65; j++ {
			want += i + j
		}
	}
	fmt.Printf("triangular sum via rectangular iteration: %d (expected %d, match %v)\n",
		sum, want, sum == want)

	// Point query: which triangle iteration does rectangle cell (7, 40)
	// execute?
	src := []int64{7, 40}
	if err := m.SrcToDst(src, tIdx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rectangle (x=7, y=40) executes triangle (i=%d, j=%d)\n", tIdx[0], tIdx[1])

	// --- Part 2: fusing nests of different shapes --------------------
	tetra := nonrect.MustNewNest([]string{"N"},
		nonrect.L("a", "0", "N-1"),
		nonrect.L("b", "0", "a+1"),
		nonrect.L("c", "b", "a+1"),
	)
	tetraRes, err := nonrect.Collapse(tetra, 3)
	if err != nil {
		log.Fatal(err)
	}
	tetraB, err := tetraRes.Unranker.Bind(map[string]int64{"N": 30})
	if err != nil {
		log.Fatal(err)
	}
	fused, err := nonrect.NewFused(triB, tetraB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfused space: triangle (%d) + tetrahedron (%d) = %d ranks\n",
		triB.Total(), tetraB.Total(), fused.Total())

	// Split the fused range into 4 balanced chunks, as a static schedule
	// would; count how many iterations of each part land in each chunk.
	P := int64(4)
	per := (fused.Total() + P - 1) / P
	for c := int64(0); c < P; c++ {
		lo := c*per + 1
		hi := lo + per - 1
		if hi > fused.Total() {
			hi = fused.Total()
		}
		var nTri, nTetra int
		if err := fused.ForRange(lo, hi, func(part int, idx []int64) bool {
			if part == 0 {
				nTri++
			} else {
				nTetra++
			}
			return true
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  chunk %d (ranks %5d..%5d): %5d triangle + %5d tetrahedron iterations\n",
			c, lo, hi, nTri, nTetra)
	}
}
