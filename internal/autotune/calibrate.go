package autotune

import (
	"math/rand"
	"time"

	"repro/internal/omp"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// Calibration holds the overhead costs (seconds) the planner charges
// per simulated scheduling event. Both are measured, never guessed:
// the dequeue cost on first contact with the process (empty dynamic
// minus empty static loop), the recovery cost per plan from the nest's
// own unranker — then overridden by the live telemetry histogram's p50
// as soon as real chunk recoveries have been observed.
type Calibration struct {
	// Dequeue is the shared-counter grab plus dispatch of the dynamic
	// and guided schedules.
	Dequeue float64
	// Recovery is one §V closed-form index recovery, charged at the
	// start of every simulated chunk.
	Recovery float64
	// RecoveryMeasured reports whether Recovery came from the live
	// omp.recovery_seconds histogram (true) or the first-contact
	// sampling pass (false).
	RecoveryMeasured bool
}

// minRecoveryObservations is how many live histogram observations the
// planner requires before trusting the p50 over its own sampling pass.
const minRecoveryObservations = 32

// timeIt measures f, repeating until the total elapsed time exceeds
// minDuration, and returns seconds per call.
func timeIt(minDuration time.Duration, f func()) float64 {
	reps := 1
	for {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		el := time.Since(start)
		if el >= minDuration || reps >= 1<<28 {
			return el.Seconds() / float64(reps)
		}
		if el <= 0 {
			reps *= 64
			continue
		}
		grow := int(float64(minDuration)/float64(el)) + 1
		if grow > 64 {
			grow = 64
		}
		reps *= grow
	}
}

// measureDequeue calibrates the per-chunk overhead of the dynamic
// schedule: an empty-body dynamic loop on one thread minus an empty
// static loop. Measured once per Tuner (first contact), the budget is
// deliberately small — the constant only tie-breaks chunk sizes.
func measureDequeue() float64 {
	const n = 1 << 15
	dyn := timeIt(4*time.Millisecond, func() {
		omp.ParallelFor(1, 0, n, omp.Schedule{Kind: omp.Dynamic}, func(int, int64) {})
	})
	stat := timeIt(4*time.Millisecond, func() {
		omp.ParallelFor(1, 0, n, omp.Schedule{Kind: omp.Static}, func(int, int64) {})
	})
	per := (dyn - stat) / n
	if per < 1e-9 {
		per = 1e-9 // floor: an atomic RMW is never free
	}
	return per
}

// measureRecovery samples one closed-form recovery over random ranks of
// the bound space (the first-contact pass; the live histogram takes
// over once the nest has actually run).
func measureRecovery(b *unrank.Bound, c int, total int64) float64 {
	if total <= 0 {
		return 0
	}
	rnd := rand.New(rand.NewSource(11))
	const nPCs = 64
	pcs := make([]int64, nPCs)
	for i := range pcs {
		pcs[i] = 1 + rnd.Int63n(total)
	}
	idx := make([]int64, c)
	sec := timeIt(2*time.Millisecond, func() {
		for _, pc := range pcs {
			_ = b.Unrank(pc, idx)
		}
	})
	return sec / nPCs
}

// recoveryP50 returns the p50 of the live per-chunk recovery histogram
// ("omp.recovery_seconds", observed by the instrumented collapsed
// executors) when it has enough observations, else (0, false).
func recoveryP50(reg *telemetry.Registry) (float64, bool) {
	if reg == nil {
		return 0, false
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["omp.recovery_seconds"]
	if !ok || h.Count < minRecoveryObservations {
		return 0, false
	}
	return h.Quantile(0.5), true
}
