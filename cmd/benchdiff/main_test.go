package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// writeReport serialises an overhead report scaled by nsScale (>1 =
// slower ns metrics, proportionally lower speedups) into dir.
func writeReport(t *testing.T, dir, name string, nsScale float64) string {
	t.Helper()
	rep := &experiments.OverheadReport{Suite: "overhead", Meta: experiments.NewBenchMeta()}
	rep.Rows = append(rep.Rows, experiments.OverheadRow{
		Kernel:                "correlation",
		Params:                map[string]int64{"N": 100},
		OriginalNsPerIter:     2 * nsScale,
		RecoverEveryNsPerIter: 90 * nsScale,
		Schedules: []experiments.OverheadSched{{
			Schedule:      "static",
			PerIter:       experiments.OverheadEngine{NsPerIter: 15 * nsScale},
			Ranges:        experiments.OverheadEngine{NsPerIter: 4 * nsScale},
			SpeedupRanges: 3.75 / nsScale,
		}},
	})
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around f.
func capture(t *testing.T, f func() (int, error)) (string, int, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	code, ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, code, ferr
}

// TestIdenticalRunsExitZero is the gate's acceptance: two identical
// documents compare clean.
func TestIdenticalRunsExitZero(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", 1)
	b := writeReport(t, dir, "b.json", 1)
	out, code, err := capture(t, func() (int, error) {
		return run(options{oldPath: a, newPath: b, threshold: 20})
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "benchdiff: OK") {
		t.Errorf("missing OK verdict:\n%s", out)
	}
}

// TestSyntheticRegressionExitNonZero: a 25% injected slowdown must
// fail the 20% gate.
func TestSyntheticRegressionExitNonZero(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", 1)
	b := writeReport(t, dir, "b.json", 1.25)
	out, code, err := capture(t, func() (int, error) {
		return run(options{oldPath: a, newPath: b, threshold: 20})
	})
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Errorf("25%% regression exited 0:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("missing regression report:\n%s", out)
	}
}

func TestQuietMode(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", 1)
	b := writeReport(t, dir, "b.json", 1.5)
	out, code, err := capture(t, func() (int, error) {
		return run(options{oldPath: a, newPath: b, threshold: 20, quiet: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out, "REGRESSION correlation/") {
		t.Errorf("quiet output missing regression lines:\n%s", out)
	}
}

func TestKernelOverrideAndMetricsFilter(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", 1)
	b := writeReport(t, dir, "b.json", 1.3)
	// A generous per-kernel override lets the 30% slip through...
	_, code, err := capture(t, func() (int, error) {
		return run(options{oldPath: a, newPath: b, threshold: 20, kernels: "correlation=60"})
	})
	if err != nil || code != 0 {
		t.Errorf("override run: code=%d err=%v, want 0/nil", code, err)
	}
	// ...and a speedup-only filter still catches the ratio drop at a
	// tight threshold.
	_, code, err = capture(t, func() (int, error) {
		return run(options{oldPath: a, newPath: b, threshold: 10, metrics: "speedup"})
	})
	if err != nil || code != 1 {
		t.Errorf("filtered run: code=%d err=%v, want 1/nil", code, err)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := run(options{}); err == nil {
		t.Error("missing paths accepted")
	}
	if _, err := run(options{oldPath: "a", newPath: "b", kernels: "bad"}); err == nil {
		t.Error("malformed -kernel accepted")
	}
	if _, err := run(options{oldPath: "/nonexistent.json", newPath: "/also.json"}); err == nil {
		t.Error("missing file accepted")
	}
}
