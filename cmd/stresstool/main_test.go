package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 2, 1, 2, true, true); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "stress ok: 2 cases") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "prec128") {
		t.Errorf("faulted sweep should report precision escalations:\n%s", out)
	}
}

func TestRunRejectsBadSeeds(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 0, 1, 1, false, false); err == nil {
		t.Error("run with -seeds 0 should fail")
	}
}
