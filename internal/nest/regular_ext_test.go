package nest_test

import (
	"math/rand"
	"testing"

	"repro/internal/nest/nesttest"
)

func TestRandRegularNestsAreRegular(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n, params := nesttest.RandRegularNest(r)
		if err := n.MustBind(params).CheckRegular(); err != nil {
			t.Fatalf("trial %d (%v, %v): %v", trial, n.Indices(), params, err)
		}
	}
	n, params := nesttest.NonZeroLowerNest()
	if err := n.MustBind(params).CheckRegular(); err != nil {
		t.Fatalf("NonZeroLowerNest: %v", err)
	}
}
