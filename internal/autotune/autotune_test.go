package autotune

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/schedsim"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

func triangular(t testing.TB) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"))
	res, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// partialCollapse collapses only the outer loop of a triangular nest,
// so per-unit work varies linearly across the collapsed range — the
// imbalanced shape the work model must expose.
func partialCollapse(t testing.TB) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"))
	res, err := core.Collapse(n, 1, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkModelUniformForFullCollapse(t *testing.T) {
	res := triangular(t)
	params := map[string]int64{"N": 100}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	m := buildWorkModel(res, b, params, 64)
	if !m.uniform {
		t.Fatal("full collapse should produce the uniform model")
	}
	want := float64(b.Total())
	if m.totalWork != want {
		t.Fatalf("totalWork = %g, want %g", m.totalWork, want)
	}
	var sum float64
	for _, w := range m.work {
		sum += w
	}
	if sum != want {
		t.Fatalf("sum(work) = %g, want %g", sum, want)
	}
}

func TestWorkModelSeesPartialCollapseImbalance(t *testing.T) {
	res := partialCollapse(t)
	params := map[string]int64{"N": 256}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	m := buildWorkModel(res, b, params, 64)
	if m.uniform {
		t.Fatal("partial collapse must not use the uniform model")
	}
	// Outer iteration i has N-i inner iterations: the first cell must
	// carry visibly more work than the last.
	first, last := m.work[0], m.work[len(m.work)-1]
	if first <= 2*last {
		t.Fatalf("work profile flat: first cell %g, last cell %g", first, last)
	}
	// Total inner iterations of the triangular nest: N(N+1)/2.
	want := float64(256*257) / 2
	if ratio := m.totalWork / want; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("totalWork = %g, want about %g (midpoint sampling within 10%%)", m.totalWork, want)
	}
}

func TestPlanCachesAndCounts(t *testing.T) {
	tel := telemetry.New()
	tuner := New(Options{Registry: tel, UnitSec: 1e-6})
	res := triangular(t)
	params := map[string]int64{"N": 80}

	p1, cached, err := tuner.Plan(res, params)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first Plan reported cached")
	}
	if p1.Decision.Workers < 1 || p1.Decision.Workers > runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d out of range", p1.Decision.Workers)
	}
	if p1.Decision.Schedule.Kind == omp.ScheduleAuto {
		t.Fatal("plan returned unresolved ScheduleAuto")
	}
	if p1.Decision.PredictedSec <= 0 {
		t.Fatalf("predicted makespan %g, want > 0", p1.Decision.PredictedSec)
	}

	p2, cached, err := tuner.Plan(res, params)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || p2 != p1 {
		t.Fatal("second Plan did not hit the cache")
	}
	// Nearby size, same log2 bucket: still a hit.
	if _, cached, _ = tuner.Plan(res, map[string]int64{"N": 81}); !cached {
		t.Fatal("same params bucket missed the cache")
	}
	// Order-of-magnitude change: bucket differs, re-plan.
	if _, cached, _ = tuner.Plan(res, map[string]int64{"N": 800}); cached {
		t.Fatal("different params bucket hit the cache")
	}

	snap := tel.Snapshot()
	if got := snap.Counters["autotune.plans"]; got != 2 {
		t.Errorf("autotune.plans = %d, want 2", got)
	}
	if got := snap.Counters["autotune.cache_hits"]; got != 2 {
		t.Errorf("autotune.cache_hits = %d, want 2", got)
	}
}

func TestObserveReplansOnDeviation(t *testing.T) {
	tel := telemetry.New()
	tuner := New(Options{Registry: tel, UnitSec: 1e-6})
	res := triangular(t)
	params := map[string]int64{"N": 80}
	p1, _, err := tuner.Plan(res, params)
	if err != nil {
		t.Fatal(err)
	}

	// Within deviation: no replan.
	same, replanned := tuner.Observe(p1, p1.Decision.PredictedSec*1.1)
	if replanned || same != p1 {
		t.Fatal("10% deviation must not replan")
	}

	// 3x slower than predicted: replan, unit cost scales up, and the
	// refreshed plan replaces the cached one.
	p2, replanned := tuner.Observe(p1, p1.Decision.PredictedSec*3)
	if !replanned {
		t.Fatal("3x deviation did not replan")
	}
	if p2.UnitSec <= p1.UnitSec {
		t.Fatalf("unit cost not scaled up: %g -> %g", p1.UnitSec, p2.UnitSec)
	}
	if p2.Replans() != 1 {
		t.Fatalf("Replans() = %d, want 1", p2.Replans())
	}
	p3, cached, err := tuner.Plan(res, params)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || p3 != p2 {
		t.Fatal("cache still serves the stale plan after refinement")
	}
	if got := tel.Snapshot().Counters["autotune.replans"]; got != 1 {
		t.Errorf("autotune.replans = %d, want 1", got)
	}
}

func TestObserveNoiseFloor(t *testing.T) {
	tuner := New(Options{UnitSec: 1e-9})
	res := triangular(t)
	p, _, err := tuner.Plan(res, map[string]int64{"N": 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny absolute deviations (microseconds) are timer noise, not signal.
	if _, replanned := tuner.Observe(p, p.Decision.PredictedSec+20e-6); replanned {
		t.Fatal("sub-noise-floor deviation replanned")
	}
}

func TestPlannerPrefersChunkedOnImbalancedWork(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 cores")
	}
	tuner := New(Options{UnitSec: 1e-6, MaxWorkers: 4})
	res := partialCollapse(t)
	p, _, err := tuner.Plan(res, map[string]int64{"N": 4096})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Decision
	// The triangular profile penalizes plain static halves: any chunked
	// or guided choice beats one contiguous block per thread.
	if d.Schedule.Kind == omp.Static {
		t.Fatalf("planner chose plain static for triangular work: %v", d)
	}
	if d.Workers < 2 {
		t.Fatalf("planner chose %d workers with 4 available on large work", d.Workers)
	}
}

func TestCollapsedForVisitsEveryIterationOnce(t *testing.T) {
	tel := telemetry.New()
	tuner := New(Options{Registry: tel})
	res := triangular(t)
	params := map[string]int64{"N": 40}
	var mu sync.Mutex
	seen := map[[2]int64]int{}
	run, err := tuner.CollapsedFor(context.Background(), res, params, func(tid int, idx []int64) {
		mu.Lock()
		seen[[2]int64{idx[0], idx[1]}]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for i := int64(0); i < 40; i++ {
		for j := i; j < 40; j++ {
			want++
			if seen[[2]int64{i, j}] != 1 {
				t.Fatalf("iteration (%d,%d) visited %d times", i, j, seen[[2]int64{i, j}])
			}
		}
	}
	if len(seen) != want {
		t.Fatalf("visited %d distinct iterations, want %d", len(seen), want)
	}
	if run.Plan == nil || run.Actual <= 0 {
		t.Fatalf("run missing plan or timing: %+v", run)
	}
	if run.Stats.Total != int64(want) {
		t.Fatalf("Stats.Total = %d, want %d", run.Stats.Total, want)
	}
	// The tuned run publishes worker metrics labelled with the chosen
	// schedule.
	sched := run.Plan.Decision.Schedule.Kind.String()
	snap := tel.Snapshot()
	var iters int64
	for tid := 0; tid < run.Plan.Decision.Workers; tid++ {
		iters += snap.Counters[fmt.Sprintf("omp.worker_iterations{tid=%q,sched=%q}", fmt.Sprint(tid), sched)]
	}
	if iters != int64(want) {
		t.Fatalf("labelled worker iterations sum to %d, want %d", iters, want)
	}
}

func TestCollapsedForConcurrent(t *testing.T) {
	tuner := New(Options{Registry: telemetry.New()})
	res := triangular(t)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				_, err := tuner.CollapsedFor(context.Background(), res,
					map[string]int64{"N": 30}, func(tid int, idx []int64) {
						total.Add(1)
					})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := int64(4 * 3 * (30 * 31 / 2))
	if total.Load() != want {
		t.Fatalf("concurrent tuned runs visited %d iterations, want %d", total.Load(), want)
	}
}

func TestRecoveryP50OverridesSampling(t *testing.T) {
	tel := telemetry.New()
	h := tel.Histogram("omp.recovery_seconds", nil)
	for i := 0; i < 2*minRecoveryObservations; i++ {
		h.Observe(1e-5)
	}
	tuner := New(Options{Registry: tel})
	res := triangular(t)
	p, _, err := tuner.Plan(res, map[string]int64{"N": 50})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Cal.RecoveryMeasured {
		t.Fatal("plan ignored the live recovery histogram")
	}
	if p.Cal.Recovery <= 0 {
		t.Fatalf("measured recovery %g, want > 0", p.Cal.Recovery)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Schedule: omp.Schedule{Kind: omp.Dynamic, Chunk: 64}, Workers: 8}
	if got := d.String(); got != "dynamic,64 x8" {
		t.Fatalf("Decision.String() = %q", got)
	}
	d = Decision{Schedule: omp.Schedule{Kind: omp.Static}, Workers: 2}
	if got := d.String(); got != "static x2" {
		t.Fatalf("Decision.String() = %q", got)
	}
}

func TestWorkloadTraceScoring(t *testing.T) {
	tuner := New(Options{
		UnitSec: 1e-6,
		Workload: Workload{
			Arrivals: schedsim.Arrivals{Kind: schedsim.Poisson, Rate: 100},
			Requests: 32,
		},
	})
	res := triangular(t)
	p, _, err := tuner.Plan(res, map[string]int64{"N": 64})
	if err != nil {
		t.Fatal(err)
	}
	if p.Decision.PredictedSec <= 0 || p.Decision.Score <= 0 {
		t.Fatalf("trace-scored plan has empty prediction: %+v", p.Decision)
	}
}

// TestPlanKeyDistinguishesInnerLoops pins the regression where two
// nests sharing a collapsed prefix but differing in non-collapsed inner
// loops (syrk vs ltmp) collided to one plan key: the structural
// signature must cover the FULL nest, because the work profile the
// planner schedules lives in the inner loops.
func TestPlanKeyDistinguishesInnerLoops(t *testing.T) {
	syrkLike := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"), nest.L("j", "0", "i+1"), nest.L("k", "0", "N"))
	ltmpLike := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1"))
	resA, err := core.Collapse(syrkLike, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := core.Collapse(ltmpLike, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 32}
	if a, b := planKey(resA, params, 8), planKey(resB, params, 8); a == b {
		t.Fatalf("distinct inner loops share plan key %q", a)
	}
	// Same full shape, different collapse count: also distinct plans.
	resC, err := core.Collapse(syrkLike, 3, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a, c := planKey(resA, params, 8), planKey(resC, params, 8); a == c {
		t.Fatalf("distinct collapse counts share plan key %q", a)
	}
}
