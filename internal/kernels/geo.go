package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// trapez: an elementwise update over a trapezoidal space
// { (i, j) : 0 <= i < N, 0 <= j < 2N - i } — row i has 2N-i cells, so
// outer-static scheduling is mildly imbalanced (first rows do ~2x the
// work of the last). Rows are stored packed.
// ---------------------------------------------------------------------

// Trapez is the trapezoidal elementwise kernel.
var Trapez = register(&Kernel{
	Name: "trapez",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "2*N - i"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 2000},
	TestParams:  map[string]int64{"N": 36},
	New:         func(p map[string]int64) Instance { return newTrapezInst(p["N"]) },
})

type trapezInst struct {
	n    int64
	x, y []float64 // read-only inputs of length 2N
	out  []float64 // packed trapezoid: row i starts at 2N*i - i(i-1)/2
}

func newTrapezInst(n int64) *trapezInst {
	cells := 2*n*n - n*(n-1)/2
	in := &trapezInst{
		n:   n,
		x:   make([]float64, 2*n),
		y:   make([]float64, 2*n),
		out: make([]float64, cells),
	}
	lcg(in.x, 51)
	lcg(in.y, 52)
	return in
}

func (in *trapezInst) rowBase(i int64) int64 { return 2*in.n*i - i*(i-1)/2 }

func (in *trapezInst) cell(i, j int64) {
	v := in.x[j]*in.y[(i+j)%(2*in.n)] + 0.25*in.x[(i)%(2*in.n)]
	in.out[in.rowBase(i)+j] = v
}

func (in *trapezInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *trapezInst) RunOuter(i int64) {
	hi := 2*in.n - i
	for j := int64(0); j < hi; j++ {
		in.cell(i, j)
	}
}

func (in *trapezInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1]) }

// RunCollapsedRange fuses body and incrementation (§V); packed rows make
// the output offset contiguous in rank order.
func (in *trapezInst) RunCollapsedRange(start []int64, count int64) {
	i, j := start[0], start[1]
	n2 := 2 * in.n
	o := in.rowBase(i) + j
	x, y, out := in.x, in.y, in.out
	for q := int64(0); q < count; q++ {
		out[o] = x[j]*y[(i+j)%n2] + 0.25*x[i%n2]
		o++
		j++
		if j >= n2-i {
			i++
			j = 0
		}
	}
}

func (in *trapezInst) WorkPerOuter(i int64) float64 { return float64(2*in.n - i) }

func (in *trapezInst) WorkPerCollapsed([]int64) float64 { return 1 }

func (in *trapezInst) Checksum() float64 { return checksum(in.out) }

func (in *trapezInst) Reset() {
	for x := range in.out {
		in.out[x] = 0
	}
}

// ---------------------------------------------------------------------
// tetra: the paper's Fig. 6 tetrahedral nest with all three loops
// collapsed. The output is laid out by iteration rank — the memory-layout
// application of ranking polynomials the paper cites (§III, [8]) — so
// every (i, j, k) owns a distinct cell and the kernel is elementwise:
//
//	for (i = 0; i < N-1; i++)
//	  for (j = 0; j < i+1; j++)
//	    for (k = j; k < i+1; k++)
//	      w[rank(i,j,k)-1] = f(i, j, k);
// ---------------------------------------------------------------------

// Tetra is the tetrahedral elementwise kernel (collapse 3).
var Tetra = register(&Kernel{
	Name: "tetra",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
	),
	Collapse:    3,
	BenchParams: map[string]int64{"N": 250},
	TestParams:  map[string]int64{"N": 14},
	New:         func(p map[string]int64) Instance { return newTetraInst(p["N"]) },
})

type tetraInst struct {
	n       int64
	x, y, z []float64
	w       []float64
}

func newTetraInst(n int64) *tetraInst {
	total := (n*n*n - n) / 6
	in := &tetraInst{
		n: n,
		x: make([]float64, n),
		y: make([]float64, n),
		z: make([]float64, n),
		w: make([]float64, total),
	}
	lcg(in.x, 61)
	lcg(in.y, 62)
	lcg(in.z, 63)
	return in
}

// rank is the ranking polynomial of the Fig. 6 nest (paper §IV.C),
// evaluated in exact integer arithmetic:
// r(i,j,k) = (6k - 3j² + 6ij + 3j + i³ + 3i² + 2i + 6) / 6.
func tetraRank(i, j, k int64) int64 {
	return (6*k - 3*j*j + 6*i*j + 3*j + i*i*i + 3*i*i + 2*i + 6) / 6
}

func (in *tetraInst) cell(i, j, k int64) {
	n := in.n
	in.w[tetraRank(i, j, k)-1] = in.x[i%n]*in.y[j%n] + in.z[k%n]*0.5
}

func (in *tetraInst) OuterRange() (int64, int64) { return 0, in.n - 1 }

func (in *tetraInst) RunOuter(i int64) {
	for j := int64(0); j <= i; j++ {
		for k := j; k <= i; k++ {
			in.cell(i, j, k)
		}
	}
}

func (in *tetraInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1], idx[2]) }

// RunCollapsedRange fuses body and incrementation (§V). The rank-ordered
// layout makes the output offset pc-1, i.e. contiguous per chunk.
func (in *tetraInst) RunCollapsedRange(start []int64, count int64) {
	i, j, k := start[0], start[1], start[2]
	n := in.n
	o := tetraRank(i, j, k) - 1
	x, y, z, w := in.x, in.y, in.z, in.w
	for q := int64(0); q < count; q++ {
		w[o] = x[i%n]*y[j%n] + z[k%n]*0.5
		o++
		k++
		if k > i {
			j++
			if j > i {
				i++
				j = 0
			}
			k = j
		}
	}
}

func (in *tetraInst) WorkPerOuter(i int64) float64 {
	// sum_{j=0}^{i} (i-j+1) = (i+1)(i+2)/2
	return float64((i + 1) * (i + 2) / 2)
}

func (in *tetraInst) WorkPerCollapsed([]int64) float64 { return 1 }

func (in *tetraInst) Checksum() float64 { return checksum(in.w) }

func (in *tetraInst) Reset() {
	for x := range in.w {
		in.w[x] = 0
	}
}
