// Package schedsim is a discrete-event simulator of OpenMP worksharing
// schedules. Given the work duration of each scheduling unit (an outer
// loop iteration, or one collapsed iteration), it computes the makespan —
// the finishing time of the slowest thread — under the static,
// static-chunked, dynamic and guided schedules, including per-chunk
// overheads (dynamic dequeue cost, collapsed-loop index-recovery cost).
//
// The simulator substitutes for the paper's 12-core AMD Opteron (§VII):
// the load-(im)balance phenomena in Figs. 2 and 9 are properties of the
// schedule and of the exact per-unit work — which this repository
// computes from its own Ehrhart trip counts — not of a particular
// machine. Costs are calibrated from serial measurements, so simulated
// gains preserve the paper's shape on any host, including single-core CI.
package schedsim

import "fmt"

// LowerBound returns the trivial makespan lower bound
// max(total/P, max unit).
func LowerBound(work []float64, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	var total, maxW float64
	for _, w := range work {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if avg := total / float64(threads); avg > maxW {
		return avg
	}
	return maxW
}

// Total returns the sum of all unit durations (the serial time).
func Total(work []float64) float64 {
	var t float64
	for _, w := range work {
		t += w
	}
	return t
}

// StaticLoads returns the per-thread load under schedule(static): the
// range is split into one contiguous block per thread with near-equal
// iteration counts (the first len(work)%threads blocks get one extra).
// This is the distribution of the paper's Fig. 2.
func StaticLoads(work []float64, threads int) []float64 {
	if threads < 1 {
		threads = 1
	}
	loads := make([]float64, threads)
	n := int64(len(work))
	base := n / int64(threads)
	rem := n % int64(threads)
	var start int64
	for t := 0; t < threads; t++ {
		size := base
		if int64(t) < rem {
			size++
		}
		for i := start; i < start+size; i++ {
			loads[t] += work[i]
		}
		start += size
	}
	return loads
}

// Static returns the makespan under schedule(static), adding
// perChunkOverhead once per non-empty thread block (for collapsed loops
// this models the single costly index recovery of §V).
func Static(work []float64, threads int, perChunkOverhead float64) float64 {
	return Makespan(work, threads, Policy{Kind: PolicyStatic}, CostModel{PerChunk: perChunkOverhead})
}

// StaticChunk returns the makespan under schedule(static, chunk): chunks
// of the given size are assigned round-robin; perChunkOverhead is paid at
// the start of every chunk.
func StaticChunk(work []float64, threads int, chunk int, perChunkOverhead float64) float64 {
	return Makespan(work, threads, Policy{Kind: PolicyStaticChunk, Chunk: chunk},
		CostModel{PerChunk: perChunkOverhead})
}

// Dynamic returns the makespan under schedule(dynamic, chunk): a greedy
// list schedule in which the earliest-available thread takes the next
// chunk, paying perDequeue overhead per grab. This models the runtime
// cost the paper attributes to dynamic scheduling (§I, §II). Collapsed
// loops additionally pay an index recovery per chunk: use the CostModel
// engine (Makespan/Simulate) with PerChunk set from the measured
// recovery histogram for those.
func Dynamic(work []float64, threads int, chunk int, perDequeue float64) float64 {
	return Makespan(work, threads, Policy{Kind: PolicyDynamic, Chunk: chunk},
		CostModel{PerDequeue: perDequeue})
}

// Guided returns the makespan under schedule(guided, minChunk): chunk
// sizes start at remaining/threads and decay, bounded below by minChunk;
// each grab costs perDequeue. See Dynamic for the collapsed-loop
// recovery cost.
func Guided(work []float64, threads int, minChunk int, perDequeue float64) float64 {
	return Makespan(work, threads, Policy{Kind: PolicyGuided, Chunk: minChunk},
		CostModel{PerDequeue: perDequeue})
}

// UniformStatic is Static for n identical units of duration w, in closed
// form; useful when collapsed iteration counts are in the millions.
func UniformStatic(n int64, w float64, threads int, perChunkOverhead float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if n <= 0 {
		return 0
	}
	maxUnits := (n + int64(threads) - 1) / int64(threads)
	return float64(maxUnits)*w + perChunkOverhead
}

// Gain computes the paper's Fig. 9 metric:
// (timeWithout − timeWith) / timeWithout.
func Gain(timeWithout, timeWith float64) float64 {
	if timeWithout <= 0 {
		return 0
	}
	return (timeWithout - timeWith) / timeWithout
}

// FormatLoads renders per-thread loads as a small ASCII bar chart
// (used by the Fig. 2 generator).
func FormatLoads(loads []float64, width int) []string {
	var maxL float64
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]string, len(loads))
	for t, l := range loads {
		bars := 0
		if maxL > 0 {
			bars = int(l / maxL * float64(width))
		}
		out[t] = fmt.Sprintf("thread %2d |%-*s| %.0f", t, width, repeat('#', bars), l)
	}
	return out
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
