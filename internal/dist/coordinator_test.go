package dist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

func triangle(t *testing.T) *core.Result {
	t.Helper()
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	res, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tupleHash is the order-independent per-tuple checksum the
// differential checks fold: any missing, extra or double-counted rank
// changes the run sum.
func tupleHash(idx []int64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range idx {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// seqBaseline enumerates the collapsed range sequentially — the oracle
// every recovered run is differentially verified against.
func seqBaseline(t *testing.T, res *core.Result, params map[string]int64) (total int64, sum uint64) {
	t.Helper()
	b, err := res.Unranker.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	total = b.Total()
	err = core.ForRange(b, 1, total, func(pc int64, idx []int64) { sum += tupleHash(idx) })
	if err != nil {
		t.Fatal(err)
	}
	return total, sum
}

func distBody(worker int, pc int64, idx []int64) uint64 { return tupleHash(idx) }

func TestRunMatchesSequential(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 80}
	total, want := seqBaseline(t, res, params)
	for _, cfg := range []Config{
		{Workers: 1, Shards: 1},
		{Workers: 4, Shards: 32},
		{Workers: 3, Shards: 7, Chunk: 11},
		{Workers: 8, Shards: 64, MinShard: 8},
	} {
		rep, err := Run(context.Background(), res, params, cfg, distBody)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if rep.Total != total || rep.Executed != total || rep.Sum != want {
			t.Fatalf("cfg %+v: total=%d executed=%d sum=%#x, want %d/%d/%#x",
				cfg, rep.Total, rep.Executed, rep.Sum, total, total, want)
		}
		if rep.Completions == 0 || rep.PlannedShards == 0 {
			t.Fatalf("cfg %+v: no completions recorded: %+v", cfg, rep)
		}
	}
}

// TestLeaseExpiryReassignment stalls the first shard attempt past the
// lease TTL: the monitor must expire the lease, requeue the shard, and
// a second executor must complete it; when the straggler eventually
// finishes too, its completion is detected as a duplicate and dropped.
// The test runs under -race in the Makefile's race sweep.
func TestLeaseExpiryReassignment(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 60}
	total, want := seqBaseline(t, res, params)

	// Stall the first CHUNK (after the attempt's cancellation check), so
	// the straggler sleeps through its lease expiry and then completes
	// the shard anyway — forcing the duplicate-completion commit path,
	// not just cooperative cancellation.
	var stalled atomic.Bool
	restore := faults.Activate(&faults.Plan{
		OnChunk: func(worker int, clo, chi int64) error {
			if stalled.CompareAndSwap(false, true) {
				time.Sleep(120 * time.Millisecond) // ≫ LeaseTTL below
			}
			return nil
		},
	})
	defer restore()

	tel := telemetry.New()
	rep, err := Run(context.Background(), res, params, Config{
		Workers:        4,
		Shards:         8,
		LeaseTTL:       20 * time.Millisecond,
		SpeculateAfter: -1, // isolate lease expiry from speculation
		Registry:       tel,
	}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sum != want || rep.Executed != total {
		t.Fatalf("recovered run sum=%#x executed=%d, want %#x/%d", rep.Sum, rep.Executed, want, total)
	}
	if rep.LeaseExpiries == 0 {
		t.Fatalf("stalled executor's lease never expired: %+v", rep)
	}
	if rep.Duplicates == 0 {
		t.Fatalf("straggler's late completion was not detected as duplicate: %+v", rep)
	}
	snap := tel.Snapshot()
	if snap.Counters["dist.lease_expiries"] != rep.LeaseExpiries {
		t.Fatalf("dist.lease_expiries counter = %d, want %d",
			snap.Counters["dist.lease_expiries"], rep.LeaseExpiries)
	}
}

// TestSpeculativeBackup makes one attempt a straggler (without letting
// its lease expire) and checks a speculative backup is launched and
// wins, with the straggler's duplicate completion dropped.
func TestSpeculativeBackup(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 60}
	total, want := seqBaseline(t, res, params)

	var stalled atomic.Bool
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if stalled.CompareAndSwap(false, true) {
				time.Sleep(250 * time.Millisecond)
			}
			return nil
		},
	})
	defer restore()

	rep, err := Run(context.Background(), res, params, Config{
		Workers:        4,
		Shards:         8,
		LeaseTTL:       10 * time.Second, // never expires
		SpeculateAfter: 10 * time.Millisecond,
	}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sum != want || rep.Executed != total {
		t.Fatalf("speculative run sum=%#x executed=%d, want %#x/%d", rep.Sum, rep.Executed, want, total)
	}
	if rep.SpeculativeRuns == 0 || rep.SpeculativeWins == 0 {
		t.Fatalf("no speculation recorded: %+v", rep)
	}
	// The straggler itself never double-commits here: once the backup's
	// completion covers the range, the straggler's lease is canceled and
	// it stops at its first chunk boundary (the duplicate-commit path is
	// exercised by TestLeaseExpiryReassignment).
}

// TestRetryThenSplit fails every attempt touching one poisoned rank
// until the shard has been split down to MinShard, then lets it pass —
// exercising retry backoff and the shrinking ladder end to end.
func TestRetryThenSplit(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 60}
	total, want := seqBaseline(t, res, params)

	const poison = 500
	var failures atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if lo <= poison && poison <= hi && hi-lo+1 > 16 {
				failures.Add(1)
				return errors.New("chaos: poisoned rank")
			}
			return nil
		},
	})
	defer restore()

	rep, err := Run(context.Background(), res, params, Config{
		Workers:    4,
		Shards:     4,
		MinShard:   16,
		MaxRetries: 1,
		Backoff:    time.Microsecond,
		MaxBackoff: 10 * time.Microsecond,
		LeaseTTL:   10 * time.Second,
	}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sum != want || rep.Executed != total {
		t.Fatalf("split run sum=%#x executed=%d, want %#x/%d", rep.Sum, rep.Executed, want, total)
	}
	if rep.Retries == 0 || rep.Splits == 0 {
		t.Fatalf("ladder not exercised (retries=%d splits=%d, injected failures=%d)",
			rep.Retries, rep.Splits, failures.Load())
	}
}

// TestLadderExhaustion poisons a rank unconditionally: the run must
// fail with the typed shard error once retries and splits are spent,
// unless AllowFallback degrades it to the uncollapsed engine.
func TestLadderExhaustion(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 40}
	total, want := seqBaseline(t, res, params)

	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if lo <= 100 && 100 <= hi {
				return errors.New("chaos: permanently poisoned")
			}
			return nil
		},
	})
	defer restore()

	base := Config{
		Workers: 2, Shards: 4, MinShard: 32, MaxRetries: 1,
		Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond,
		LeaseTTL: 10 * time.Second,
	}

	_, err := Run(context.Background(), res, params, base, distBody)
	if !errors.Is(err, faults.ErrShardFailed) {
		t.Fatalf("exhausted ladder error = %v, want ErrShardFailed", err)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Interval.Len() > base.MinShard*2 {
		t.Fatalf("ShardError = %+v; want the split-down interval", se)
	}

	fb := base
	fb.AllowFallback = true
	rep, err := Run(context.Background(), res, params, fb, distBody)
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if !rep.FellBack {
		t.Fatal("FellBack not reported")
	}
	if rep.Executed != total || rep.Sum != want {
		t.Fatalf("fallback sum=%#x executed=%d, want %#x/%d", rep.Sum, rep.Executed, want, total)
	}
}

// TestExecutorPanicIsAttemptLocal crashes executors mid-shard via an
// injected panic: the attempt must die, the shard retry, and the run
// finish exactly-once — a panic never takes down the process.
func TestExecutorPanicIsAttemptLocal(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 60}
	total, want := seqBaseline(t, res, params)

	var kills atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if kills.Add(1)%3 == 1 { // kill every third attempt, starting with the first
				panic("chaos: executor crash")
			}
			return nil
		},
	})
	defer restore()

	rep, err := Run(context.Background(), res, params, Config{
		Workers: 4, Shards: 8, MaxRetries: 3,
		Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond,
		LeaseTTL: 10 * time.Second,
	}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != total || rep.Sum != want {
		t.Fatalf("crash-recovered run sum=%#x executed=%d, want %#x/%d",
			rep.Sum, rep.Executed, want, total)
	}
	if rep.Retries == 0 {
		t.Fatalf("no retries despite %d injected crashes", kills.Load())
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	res := triangle(t)
	journal := filepath.Join(t.TempDir(), "ckpt.journal")

	rep, err := Run(context.Background(), res, map[string]int64{"N": 20},
		Config{Workers: 2, Journal: journal}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != rep.Total {
		t.Fatalf("seed run incomplete: %+v", rep)
	}

	// Same structure, different binding: the fingerprint must differ and
	// resume must refuse with the typed error.
	_, err = Run(context.Background(), res, map[string]int64{"N": 21},
		Config{Workers: 2, Journal: journal, Resume: true}, distBody)
	if !errors.Is(err, faults.ErrFingerprintMismatch) {
		t.Fatalf("cross-run resume = %v, want ErrFingerprintMismatch", err)
	}
}

// TestResumeCompleteJournal resumes a finished run: nothing to execute,
// all progress inherited.
func TestResumeCompleteJournal(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 40}
	total, want := seqBaseline(t, res, params)
	journal := filepath.Join(t.TempDir(), "ckpt.journal")

	if _, err := Run(context.Background(), res, params,
		Config{Workers: 2, Journal: journal}, distBody); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), res, params,
		Config{Workers: 2, Journal: journal, Resume: true}, distBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 || rep.Resumed != total || rep.Sum != want || rep.PlannedShards != 0 {
		t.Fatalf("complete-journal resume = %+v, want executed=0 resumed=%d sum=%#x", rep, total, want)
	}
}

// TestChaosAcceptance is the acceptance scenario from the recovery
// protocol: a run suffers executor crashes mid-shard AND a coordinator
// crash (context cancel) partway through, the journal tail is then torn
// (crash mid-append), and the resumed run — still under crash chaos —
// must finish with exactly-once coverage, differentially verified
// against sequential enumeration.
func TestChaosAcceptance(t *testing.T) {
	res := triangle(t)
	params := map[string]int64{"N": 100}
	total, want := seqBaseline(t, res, params)
	journal := filepath.Join(t.TempDir(), "ckpt.journal")

	// Phase 1: single executor for a deterministic prefix — attempts 1-2
	// commit, attempt 3 crashes the executor (panic), its retry commits,
	// then the coordinator itself "crashes" (context cancel).
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			switch attempts.Add(1) {
			case 3:
				panic("chaos: executor crash mid-shard")
			case 7:
				cancel() // coordinator crash: lose the process, keep the journal
				return errors.New("chaos: dying with coordinator")
			}
			return nil
		},
	})
	phase1 := Config{
		Workers: 1, Shards: 16, Journal: journal,
		Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond,
		LeaseTTL: 10 * time.Second,
	}
	_, err := Run(ctx, res, params, phase1, distBody)
	restore()
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("phase 1 (coordinator crash) = %v, want ErrCanceled", err)
	}

	st, err := ReplayJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	covered := st.Done.Covered()
	if covered == 0 || covered == total {
		t.Fatalf("phase 1 coverage = %d of %d; the chaos script should leave a strict prefix", covered, total)
	}

	// Crash mid-append: tear the journal tail.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0badc0de {"t":"done","lo":1,"hi":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: resume under fresh chaos — every 4th attempt crashes —
	// with full parallelism and speculation.
	var kills atomic.Int64
	restore = faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if kills.Add(1)%4 == 0 {
				panic("chaos: executor crash mid-shard")
			}
			return nil
		},
	})
	defer restore()
	rep, err := Run(context.Background(), res, params, Config{
		Workers: 4, Shards: 16, Journal: journal, Resume: true,
		Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond,
		LeaseTTL: 10 * time.Second, SpeculateAfter: 50 * time.Millisecond,
	}, distBody)
	if err != nil {
		t.Fatalf("phase 2 (resume under chaos): %v", err)
	}

	// Exactly-once: inherited + executed covers every rank once, and the
	// order-independent checksum matches sequential enumeration exactly.
	if rep.Resumed+rep.Executed != total {
		t.Fatalf("coverage = %d resumed + %d executed, want %d total", rep.Resumed, rep.Executed, total)
	}
	if rep.Resumed != covered {
		t.Fatalf("resumed %d ranks, journal held %d", rep.Resumed, covered)
	}
	if rep.Sum != want {
		t.Fatalf("differential check failed: sum=%#x, want %#x", rep.Sum, want)
	}
	if rep.Retries == 0 {
		t.Fatalf("phase 2 saw no retries despite %d attempts with kills", kills.Load())
	}

	// And the journal is now complete: a third replay shows full coverage.
	st2, err := ReplayJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done.Covered() != total {
		t.Fatalf("final journal coverage = %d, want %d", st2.Done.Covered(), total)
	}
}

func TestRunCanceledContext(t *testing.T) {
	res := triangle(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, res, map[string]int64{"N": 40}, Config{Workers: 2}, distBody)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("pre-canceled run = %v, want ErrCanceled", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	res := triangle(t)
	fp1 := Fingerprint(res, map[string]int64{"N": 40}, 820)
	fp2 := Fingerprint(res, map[string]int64{"N": 41}, 861)
	if fp1 == fp2 {
		t.Fatal("fingerprint ignores the parameter binding")
	}
	if fp1 != Fingerprint(res, map[string]int64{"N": 40}, 820) {
		t.Fatal("fingerprint not deterministic")
	}
}
