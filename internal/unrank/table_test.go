package unrank

import (
	"errors"
	"testing"

	"repro/internal/faults"
	"repro/internal/nest"
)

// tableNests are the shape classes the breakpoint tables must handle:
// fully separable shapes (every level tabulable), the tetrahedral nest
// whose middle level is NOT separable (exercising the per-level
// fallback), and a degree-5 simplex that only exists in search/table
// mode (no radical roots).
func tableNests(t *testing.T) map[string]struct {
	n      *nest.Nest
	params map[string]int64
} {
	t.Helper()
	mk := func(params []string, loops ...nest.Loop) *nest.Nest {
		n, err := nest.New(params, loops...)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	return map[string]struct {
		n      *nest.Nest
		params map[string]int64
	}{
		"rect": {
			mk([]string{"N", "M"}, nest.L("i", "0", "N"), nest.L("j", "0", "M")),
			map[string]int64{"N": 13, "M": 9},
		},
		"tri-upper": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N")),
			map[string]int64{"N": 21},
		},
		"tri-lower": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "i + 1")),
			map[string]int64{"N": 21},
		},
		"shifted": {
			mk([]string{"N"}, nest.L("i", "1", "N + 1"), nest.L("j", "i - 1", "N + 2")),
			map[string]int64{"N": 14},
		},
		"tetra": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "i + 1"), nest.L("k", "0", "j + 1")),
			map[string]int64{"N": 15},
		},
		// Level 1 is NOT separable here: the level-2 trip count (i+1)
		// depends on i, so the level-1 cumulative count mixes x and i —
		// the per-level fallback to exact binary search must carry it.
		"mixed-nonseparable": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"), nest.L("k", "0", "i + 1")),
			map[string]int64{"N": 13},
		},
		"simplex4": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"),
				nest.L("k", "j", "N"), nest.L("l", "k", "N")),
			map[string]int64{"N": 11},
		},
		"simplex5-deg5": {
			mk([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"),
				nest.L("k", "j", "N"), nest.L("l", "k", "N"), nest.L("m", "l", "N")),
			map[string]int64{"N": 9},
		},
	}
}

// TestTableMatchesOracles pins bit-identical recovery across strategies:
// for every nest and every pc, ModeTable, the TierTable rung of the
// closed-form ladder, and the ModeBinarySearch oracle must produce the
// same tuple (closed-form recovery is additionally pinned by the
// existing differential stress harness).
func TestTableMatchesOracles(t *testing.T) {
	for name, tc := range tableNests(t) {
		t.Run(name, func(t *testing.T) {
			oracle, err := New(tc.n, Options{Mode: ModeBinarySearch})
			if err != nil {
				t.Fatal(err)
			}
			ob := oracle.MustBind(tc.params)
			variants := map[string]Options{
				"mode-table":      {Mode: ModeTable},
				"mode-table-tiny": {Mode: ModeTable, TableMaxEntries: 64},
				"tier-table":      {StartTier: TierTable},
			}
			for vname, opts := range variants {
				if vname == "tier-table" && name == "simplex5-deg5" {
					continue // closed-form mode rejects degree 5 (radical limit)
				}
				u, err := New(tc.n, opts)
				if err != nil {
					t.Fatalf("%s: %v", vname, err)
				}
				b := u.MustBind(tc.params)
				if b.Total() != ob.Total() {
					t.Fatalf("%s: total %d != oracle %d", vname, b.Total(), ob.Total())
				}
				got := make([]int64, tc.n.Depth())
				want := make([]int64, tc.n.Depth())
				for pc := int64(1); pc <= b.Total(); pc++ {
					if err := b.Unrank(pc, got); err != nil {
						t.Fatalf("%s: Unrank(%d): %v", vname, pc, err)
					}
					if err := ob.Unrank(pc, want); err != nil {
						t.Fatalf("oracle Unrank(%d): %v", pc, err)
					}
					for q := range got {
						if got[q] != want[q] {
							t.Fatalf("%s: Unrank(%d) = %v, oracle %v", vname, pc, got, want)
						}
					}
				}
				t.Logf("%s stats: %s", vname, b.Stats().String())
			}
		})
	}
}

// TestTableTierCarriesSeparableLevels asserts the tentpole actually
// fires: on fully separable nests ModeTable must answer every non-final
// level from the table (no binary-search concessions), and on the
// mixed nest only the non-separable middle level may fall back.
func TestTableTierCarriesSeparableLevels(t *testing.T) {
	nests := tableNests(t)
	for _, name := range []string{"rect", "tri-upper", "tri-lower", "tetra", "simplex4", "simplex5-deg5"} {
		tc := nests[name]
		u, err := New(tc.n, Options{Mode: ModeTable})
		if err != nil {
			t.Fatal(err)
		}
		b := u.MustBind(tc.params)
		idx := make([]int64, tc.n.Depth())
		for pc := int64(1); pc <= b.Total(); pc++ {
			if err := b.Unrank(pc, idx); err != nil {
				t.Fatal(err)
			}
		}
		st := b.Stats()
		if st.Searches != 0 {
			t.Errorf("%s: separable nest conceded to binary search %d times: %s", name, st.Searches, st.String())
		}
		wantLookups := b.Total() * int64(tc.n.Depth()-1)
		if st.TableLookups != wantLookups {
			t.Errorf("%s: %d table lookups, want %d", name, st.TableLookups, wantLookups)
		}
	}
	// Mixed nest: level 1's cumulative count carries (x−i)(i+1), so its
	// x-part depends on the prefix and the level must fall back —
	// exactly once per recovery — while level 0 stays on the table.
	tc := nests["mixed-nonseparable"]
	u, err := New(tc.n, Options{Mode: ModeTable})
	if err != nil {
		t.Fatal(err)
	}
	b := u.MustBind(tc.params)
	idx := make([]int64, 3)
	for pc := int64(1); pc <= b.Total(); pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.TableLookups != b.Total() || st.Searches != b.Total() {
		t.Errorf("mixed: lookups %d searches %d, want %d each (level 0 table, level 1 search): %s",
			st.TableLookups, st.Searches, b.Total(), st.String())
	}
}

// TestTableHugeTriangular is the huge-N regression on the strided path:
// at N = 2^30 the level-0 range (2^30 values) far exceeds any table
// budget, so recovery goes breakpoint segment → in-segment exact search
// → rk confirmation. Sampled ranks across the domain — including the
// catastrophic-cancellation window near Total that broke the float64
// tier — must round-trip exactly and match the binary-search oracle.
func TestTableHugeTriangular(t *testing.T) {
	n, err := nest.New([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"))
	if err != nil {
		t.Fatal(err)
	}
	const N = int64(1) << 30
	u, err := New(n, Options{Mode: ModeTable})
	if err != nil {
		t.Fatal(err)
	}
	b := u.MustBind(map[string]int64{"N": N})
	oracle := MustNew(n, Options{Mode: ModeBinarySearch}).MustBind(map[string]int64{"N": N})
	total := b.Total()
	if want := N * (N + 1) / 2; total != want {
		t.Fatalf("Total = %d, want %d", total, want)
	}
	got := make([]int64, 2)
	want := make([]int64, 2)
	check := func(pc int64) {
		t.Helper()
		if err := b.Unrank(pc, got); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if r := b.Rank(got); r != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d (idx %v)", pc, r, got)
		}
		if err := oracle.Unrank(pc, want); err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("Unrank(%d) = %v, oracle %v", pc, got, want)
		}
	}
	for pc := int64(1); pc <= 64; pc++ {
		check(pc)
	}
	for pc := total - 64; pc <= total; pc++ {
		check(pc)
	}
	for pc := int64(1); pc < total; pc += total / 997 {
		check(pc)
	}
	st := b.Stats()
	t.Logf("stats: %s", st.String())
	if st.TableLookups == 0 || st.TableCorrections == 0 {
		t.Errorf("strided table path not exercised: %s", st.String())
	}
	if st.Searches != 0 {
		t.Errorf("table tier conceded to binary search %d times: %s", st.Searches, st.String())
	}
}

// TestRecoverBatch pins the batched entry point against per-pc Unrank
// for every nest and several pc patterns (consecutive runs, duplicates,
// strides, full-range jumps).
func TestRecoverBatch(t *testing.T) {
	for name, tc := range tableNests(t) {
		t.Run(name, func(t *testing.T) {
			u, err := New(tc.n, Options{Mode: ModeTable})
			if err != nil {
				t.Fatal(err)
			}
			b := u.MustBind(tc.params)
			ref := u.MustBind(tc.params)
			total := b.Total()
			d := tc.n.Depth()
			patterns := map[string][]int64{
				"consecutive": seqRange(1, min64(total, 200)),
				"stride-7":    seqStride(1, total, 7),
				"stride-big":  seqStride(1, total, max64(total/13, 1)),
				"dups":        {1, 1, 2, 2, 2, total / 2, total / 2, total, total},
				"mixed":       {1, 2, 3, total / 3, total/3 + 1, total - 1, total},
			}
			for pname, pcs := range patterns {
				out := make([][]int64, len(pcs))
				for i := range out {
					out[i] = make([]int64, d)
				}
				if err := b.RecoverBatch(pcs, out); err != nil {
					t.Fatalf("%s: RecoverBatch: %v", pname, err)
				}
				want := make([]int64, d)
				for i, pc := range pcs {
					if err := ref.Unrank(pc, want); err != nil {
						t.Fatal(err)
					}
					for q := 0; q < d; q++ {
						if out[i][q] != want[q] {
							t.Fatalf("%s: batch[%d] (pc %d) = %v, want %v", pname, i, pc, out[i], want)
						}
					}
				}
			}
			if st := b.Stats(); st.BatchRecoveries == 0 {
				t.Errorf("no batch recoveries counted: %s", st.String())
			}
		})
	}
}

// TestRecoverBatchValidation pins the typed failure modes.
func TestRecoverBatchValidation(t *testing.T) {
	tc := tableNests(t)["tri-upper"]
	b := MustNew(tc.n, Options{Mode: ModeTable}).MustBind(tc.params)
	out2 := [][]int64{make([]int64, 2), make([]int64, 2)}
	if err := b.RecoverBatch([]int64{1, 2, 3}, out2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := b.RecoverBatch([]int64{1, 0}, out2); err == nil {
		t.Error("out-of-range pc accepted")
	}
	if err := b.RecoverBatch([]int64{5, 3}, out2); err == nil {
		t.Error("descending pcs accepted")
	}
	if err := b.RecoverBatch([]int64{1, 2}, [][]int64{make([]int64, 2), make([]int64, 3)}); err == nil {
		t.Error("wrong-arity output tuple accepted")
	}
	if err := b.RecoverBatch(nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestDegreeGateIsModeScoped pins the relaxed degree check: radical
// solving still rejects degree > 4, while search and table modes accept
// the same nest (they invert without solving).
func TestDegreeGateIsModeScoped(t *testing.T) {
	tc := tableNests(t)["simplex5-deg5"]
	if _, err := New(tc.n, Options{}); !errors.Is(err, faults.ErrDegreeTooHigh) {
		t.Errorf("closed-form on degree-5 nest: err = %v, want ErrDegreeTooHigh", err)
	}
	for _, m := range []Mode{ModeBinarySearch, ModeTable} {
		if _, err := New(tc.n, Options{Mode: m}); err != nil {
			t.Errorf("%v on degree-5 nest: %v", m, err)
		}
	}
}

// TestParseMode pins the CLI mode parser and its typed rejection.
func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"closed-form": ModeClosedForm,
		"search":      ModeBinarySearch,
		"table":       ModeTable,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("quantum"); !errors.Is(err, faults.ErrUnknownMode) {
		t.Errorf("ParseMode(quantum) = %v, want ErrUnknownMode", err)
	}
}

func seqRange(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for pc := lo; pc <= hi; pc++ {
		out = append(out, pc)
	}
	return out
}

func seqStride(lo, hi, step int64) []int64 {
	var out []int64
	for pc := lo; pc <= hi; pc += step {
		out = append(out, pc)
	}
	return out
}
