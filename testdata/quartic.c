/* four loops depending on one index: quartic ranking, the SIV.B limit */
#pragma omp parallel for collapse(4)
for (i = 0; i < N; i++)
  for (j = 0; j <= i; j++)
    for (k = 0; k <= i; k++)
      for (l = 0; l <= i; l++)
        S(i, j, k, l);
