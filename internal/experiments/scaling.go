package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernels"
	"repro/internal/schedsim"
)

// ScalingRow reports simulated makespans of one kernel for one thread
// count.
type ScalingRow struct {
	Kernel                              string
	Threads                             int
	StaticSec, DynamicSec, CollapsedSec float64
	GainVsStatic                        float64
	SpeedupCollapsed                    float64 // serial / collapsed
}

// ScalingOptions configure the thread-scaling study.
type ScalingOptions struct {
	Quick   bool
	Kernels []string // defaults to correlation, correlation_tiled, ltmp
	Threads []int    // defaults to 2, 4, 8, 12, 24, 48
}

func (o *ScalingOptions) fill() {
	if len(o.Kernels) == 0 {
		o.Kernels = []string{"correlation", "correlation_tiled", "ltmp"}
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{2, 4, 8, 12, 24, 48}
	}
}

// Scaling extends Fig. 9 along the thread axis (the paper fixes P = 12):
// measured per-unit costs are scheduled over increasing virtual thread
// counts. It shows the §II scalability argument — outer-static saturates
// at the heaviest outer iteration, while the collapsed-static makespan
// keeps shrinking as 1/P until the per-thread recovery cost dominates.
func Scaling(opts ScalingOptions) ([]ScalingRow, error) {
	opts.fill()
	var rows []ScalingRow
	for _, name := range opts.Kernels {
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		p := k.BenchParams
		if opts.Quick {
			p = k.TestParams
		}
		inst := k.New(p)
		res, err := buildResult(k)
		if err != nil {
			return nil, err
		}
		nestParams := k.NestParams(p)

		serial := MeasureSerial(inst)
		if s := MeasureSerial(inst); s < serial {
			serial = s
		}
		lo, hi := inst.OuterRange()
		outerWork := make([]float64, hi-lo)
		var totalUnits float64
		for i := lo; i < hi; i++ {
			outerWork[i-lo] = inst.WorkPerOuter(i)
			totalUnits += outerWork[i-lo]
		}
		for i := range outerWork {
			outerWork[i] *= serial / totalUnits
		}
		cal, err := Calibrate(res, nestParams)
		if err != nil {
			return nil, err
		}
		b, err := res.Unranker.Bind(nestParams)
		if err != nil {
			return nil, err
		}
		total := b.Total()

		// Measure the §V collapsed serial run once (12 chunks) and scale
		// per-iteration cost from it.
		collapsedSerial := -1.0
		for r := 0; r < 2; r++ {
			inst.Reset()
			start := time.Now()
			if err := kernels.RunCollapsedSerialChunks(k, inst, res, p, 12); err != nil {
				return nil, err
			}
			if s := time.Since(start).Seconds(); collapsedSerial < 0 || s < collapsedSerial {
				collapsedSerial = s
			}
		}
		bodyTime := collapsedSerial - 12*cal.Recovery
		if bodyTime < 0 {
			bodyTime = collapsedSerial
		}

		var collWork []float64
		var collUnits float64
		uniform := kernelHasUniformCollapsedWork(k)
		if !uniform {
			b.Instance().Enumerate(func(idx []int64) bool {
				wu := inst.WorkPerCollapsed(idx)
				collUnits += wu
				collWork = append(collWork, wu)
				return true
			})
		}

		for _, P := range opts.Threads {
			row := ScalingRow{Kernel: name, Threads: P}
			row.StaticSec = schedsim.Static(outerWork, P, 0)
			row.DynamicSec = schedsim.Dynamic(outerWork, P, 1, cal.Dequeue)
			if uniform {
				row.CollapsedSec = schedsim.UniformStatic(total, bodyTime/float64(total), P, cal.Recovery)
			} else {
				scaled := make([]float64, len(collWork))
				for i, wu := range collWork {
					scaled[i] = wu * bodyTime / collUnits
				}
				row.CollapsedSec = schedsim.Static(scaled, P, cal.Recovery)
			}
			row.GainVsStatic = schedsim.Gain(row.StaticSec, row.CollapsedSec)
			row.SpeedupCollapsed = serial / row.CollapsedSec
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderScaling prints the study grouped by kernel.
func RenderScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling — simulated makespans vs thread count (extension of Fig. 9)\n")
	fmt.Fprintf(&b, "%-18s %8s %11s %11s %12s %13s %9s\n",
		"kernel", "threads", "static(s)", "dynamic(s)", "collapsed(s)", "gain vs stat", "speedup")
	last := ""
	for _, r := range rows {
		name := r.Kernel
		if name == last {
			name = ""
		} else {
			last = name
		}
		fmt.Fprintf(&b, "%-18s %8d %11.4f %11.4f %12.4f %13.3f %8.1fx\n",
			name, r.Threads, r.StaticSec, r.DynamicSec, r.CollapsedSec,
			r.GainVsStatic, r.SpeedupCollapsed)
	}
	return b.String()
}
