// Command benchfig regenerates the figures of the paper's evaluation
// (§VII). Each figure prints as an aligned text table; see EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
//	benchfig -fig 2          Fig. 2  load imbalance of schedule(static)
//	benchfig -fig 8          Fig. 8  root curves r(i,0,0) - pc
//	benchfig -fig 9          Fig. 9  gains of collapsing (simulated 12-thread makespans)
//	benchfig -fig 10         Fig. 10 control overhead of 12 recoveries (measured)
//	benchfig -fig all        everything
//
// Flags: -threads (virtual thread count, default 12), -quick (small
// problem sizes), -real (also run the goroutine runtime for Fig. 9),
// -chunks (recovery count for Fig. 10, default 12), -n / -fig2threads
// (Fig. 2 geometry), -v (calibration details).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2|8|9|10|all")
	threads := flag.Int("threads", 12, "simulated thread count (paper: 12)")
	quick := flag.Bool("quick", false, "use small problem sizes")
	real := flag.Bool("real", false, "also run the goroutine runtime for Fig. 9")
	chunks := flag.Int("chunks", 12, "recovery count for Fig. 10 (paper: 12)")
	fig2N := flag.Int64("n", 1000, "Fig. 2 problem size N")
	fig2T := flag.Int("fig2threads", 5, "Fig. 2 thread count (paper: 5)")
	verbose := flag.Bool("v", false, "print calibration details")
	flag.Parse()

	if err := run(*fig, *threads, *quick, *real, *chunks, *fig2N, *fig2T, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(fig string, threads int, quick, real bool, chunks int, fig2N int64, fig2T int, verbose bool) error {
	do := func(f string) bool { return fig == "all" || fig == f }
	if do("2") {
		fmt.Print(experiments.Fig2(fig2N, fig2T).Render())
		fmt.Println()
	}
	if do("8") {
		fmt.Print(experiments.RenderFig8(experiments.Fig8()))
		fmt.Println()
	}
	if do("9") {
		opts := experiments.Fig9Options{Threads: threads, Quick: quick, Real: real}
		if verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rows, err := experiments.Fig9(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig9(rows, threads, real))
		fmt.Println()
	}
	if do("10") {
		rows, err := experiments.Fig10(experiments.Fig10Options{Chunks: chunks, Quick: quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig10(rows, chunks))
		fmt.Println()
	}
	if fig == "ablation" {
		rows, err := experiments.Ablation(experiments.AblationOptions{Quick: quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblation(rows))
		fmt.Println()
	}
	if fig == "scaling" {
		rows, err := experiments.Scaling(experiments.ScalingOptions{Quick: quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(rows))
		fmt.Println()
	}
	return nil
}
