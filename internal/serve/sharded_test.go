package serve

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestExecuteShardedMatchesEnumeration pins the happy path of the
// sharded execute engine: Shards > 0 routes through the internal/dist
// coordinator and the answer is bit-identical to the unsharded oracle.
func TestExecuteShardedMatchesEnumeration(t *testing.T) {
	_, c := startServer(t, Config{Threads: 2})
	const N = 60
	tuples, checksum := triEnum(t, N)

	req := triRequest(N)
	req.Shards = 8
	ex, err := c.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("sharded execute: %v", err)
	}
	if !ex.Sharded {
		t.Fatalf("response not marked sharded: %+v", ex)
	}
	if ex.Shards != 8 {
		t.Fatalf("planned shards = %d, want 8", ex.Shards)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("sharded execute = %d iters checksum %d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
	if !ex.Collapsed || ex.Degraded {
		t.Fatalf("clean sharded run reported wrong engine: %+v", ex)
	}
	if ex.ShardRetries != 0 || ex.LeaseExpiries != 0 || ex.DuplicateShards != 0 {
		t.Fatalf("clean run has nonzero recovery ledger: %+v", ex)
	}
}

// TestExecuteShardedSurvivesWorkerPanics is the serve-level crash-chaos
// requirement: with a fault plan panicking shard executors mid-request,
// a sharded /v1/execute still answers 200 with the exactly-correct
// iteration count and checksum — each panic costs one shard attempt
// (retried under the coordinator's degradation ladder), never the
// request. The unsharded engine on the same plan fails the whole
// request, which is precisely the contrast the sharded mode buys.
func TestExecuteShardedSurvivesWorkerPanics(t *testing.T) {
	reg := telemetry.New()
	_, c := startServer(t, Config{
		Threads:  2,
		Registry: reg,
		Logf:     func(string, ...any) {}, // injected panics are expected noise
	})
	const N = 80
	tuples, checksum := triEnum(t, N)

	// Warm the compile cache outside the fault window so injection only
	// ever hits shard execution.
	if _, err := c.Compile(context.Background(), triRequest(N)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}

	var attempts atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if attempts.Add(1)%4 == 0 {
				panic("chaos: injected shard executor crash")
			}
			return nil
		},
	})
	defer restore()

	req := triRequest(N)
	req.Shards = 16
	ex, err := c.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("sharded execute under shard panics: %v", err)
	}
	if !ex.Sharded {
		t.Fatalf("response not marked sharded: %+v", ex)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("recovered execute = %d iters checksum %d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
	// 16 shards with every 4th attempt crashing: recovery must have
	// actually happened, and it must be visible in the response ledger
	// and the server registry.
	if ex.ShardRetries == 0 {
		t.Fatalf("no shard retries recorded despite injected crashes: %+v", ex)
	}
	if got := reg.Snapshot().Counters["dist.retries"]; got == 0 {
		t.Fatalf("dist.retries counter is zero on the server registry")
	}
}

// TestExecuteShardsIgnoredWhenNotCollapsible checks the downgrade path:
// a nest outside the technique with Shards set still answers via the
// uncollapsed fallback (Shards silently ignored), matching the
// unsharded downgrade contract.
func TestExecuteShardsIgnoredWhenNotCollapsible(t *testing.T) {
	_, c := startServer(t, Config{Threads: 2})
	const N = 48
	tuples, checksum := triEnum(t, N)

	// Perturbed root selection makes the compile fail deterministically
	// with ErrNoConvenientRoot — a Collapsible error, so execute must
	// downgrade to the uncollapsed engine even though Shards was set.
	restore := faults.Activate(&faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 { return x + 1000 },
	})
	defer restore()

	req := triRequest(N)
	req.Shards = 4
	ex, err := c.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("execute with uncollapsible compile: %v", err)
	}
	if ex.Sharded || ex.Collapsed {
		t.Fatalf("downgraded run claims sharded/collapsed engine: %+v", ex)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("downgraded execute = %d iters checksum %d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
}
