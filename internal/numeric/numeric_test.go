package numeric

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBernoulliKnownValues(t *testing.T) {
	want := map[int]*big.Rat{
		0:  big.NewRat(1, 1),
		1:  big.NewRat(-1, 2),
		2:  big.NewRat(1, 6),
		3:  big.NewRat(0, 1),
		4:  big.NewRat(-1, 30),
		5:  big.NewRat(0, 1),
		6:  big.NewRat(1, 42),
		8:  big.NewRat(-1, 30),
		10: big.NewRat(5, 66),
		12: big.NewRat(-691, 2730),
	}
	for n, w := range want {
		if got := Bernoulli(n); got.Cmp(w) != 0 {
			t.Errorf("Bernoulli(%d) = %s, want %s", n, got, w)
		}
	}
}

func TestBernoulliPlus(t *testing.T) {
	if got := BernoulliPlus(1); got.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("BernoulliPlus(1) = %s, want 1/2", got)
	}
	if got := BernoulliPlus(2); got.Cmp(big.NewRat(1, 6)) != 0 {
		t.Errorf("BernoulliPlus(2) = %s, want 1/6", got)
	}
	// BernoulliPlus must not mutate the memoized value.
	_ = BernoulliPlus(1)
	if got := Bernoulli(1); got.Cmp(big.NewRat(-1, 2)) != 0 {
		t.Errorf("Bernoulli(1) mutated to %s", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {20, 10, 184756},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Int64() != c.want {
			t.Errorf("Binomial(%d,%d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%30) + 1
		k := int(k8) % (n + 1)
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddMulInt64Checked(t *testing.T) {
	if _, ok := AddInt64(math.MaxInt64, 1); ok {
		t.Error("AddInt64 overflow not detected")
	}
	if _, ok := AddInt64(math.MinInt64, -1); ok {
		t.Error("AddInt64 underflow not detected")
	}
	if s, ok := AddInt64(3, 4); !ok || s != 7 {
		t.Errorf("AddInt64(3,4) = %d,%v", s, ok)
	}
	if _, ok := MulInt64(math.MaxInt64, 2); ok {
		t.Error("MulInt64 overflow not detected")
	}
	if _, ok := MulInt64(math.MinInt64, -1); ok {
		t.Error("MulInt64 MinInt64*-1 not detected")
	}
	if p, ok := MulInt64(-6, 7); !ok || p != -42 {
		t.Errorf("MulInt64(-6,7) = %d,%v", p, ok)
	}
}

func TestMulInt64AgainstBig(t *testing.T) {
	f := func(a, b int64) bool {
		got, ok := MulInt64(a, b)
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		if !want.IsInt64() {
			return !ok
		}
		return ok && got == want.Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowInt64(t *testing.T) {
	if v, ok := PowInt64(3, 4); !ok || v != 81 {
		t.Errorf("PowInt64(3,4) = %d,%v", v, ok)
	}
	if v, ok := PowInt64(-2, 3); !ok || v != -8 {
		t.Errorf("PowInt64(-2,3) = %d,%v", v, ok)
	}
	if v, ok := PowInt64(7, 0); !ok || v != 1 {
		t.Errorf("PowInt64(7,0) = %d,%v", v, ok)
	}
	if _, ok := PowInt64(10, 30); ok {
		t.Error("PowInt64 overflow not detected")
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, floor, ceil int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {0, 5, 0, 0}, {-6, 3, -2, -2},
	}
	for _, c := range cases {
		if got := FloorDivInt64(c.a, c.b); got != c.floor {
			t.Errorf("FloorDivInt64(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := CeilDivInt64(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDivInt64(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestFloorDivMatchesMathFloor(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		got := FloorDivInt64(int64(a), int64(b))
		want := int64(math.Floor(float64(a) / float64(b)))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDLCM(t *testing.T) {
	if g := GCDInt64(12, 18); g != 6 {
		t.Errorf("GCDInt64(12,18) = %d", g)
	}
	if g := GCDInt64(-12, 18); g != 6 {
		t.Errorf("GCDInt64(-12,18) = %d", g)
	}
	if g := GCDInt64(0, 0); g != 0 {
		t.Errorf("GCDInt64(0,0) = %d", g)
	}
	if l := LCMBig(big.NewInt(4), big.NewInt(6)); l.Int64() != 12 {
		t.Errorf("LCMBig(4,6) = %s", l)
	}
	if l := LCMBig(big.NewInt(0), big.NewInt(6)); l.Int64() != 0 {
		t.Errorf("LCMBig(0,6) = %s", l)
	}
	if l := LCMBig(big.NewInt(-4), big.NewInt(6)); l.Int64() != 12 {
		t.Errorf("LCMBig(-4,6) = %s", l)
	}
}

func TestRatHelpers(t *testing.T) {
	r := Rat(3, 6)
	if r.Cmp(big.NewRat(1, 2)) != 0 {
		t.Errorf("Rat(3,6) = %s", r)
	}
	if !RatIsInt(RatInt(5)) {
		t.Error("RatInt(5) not integer")
	}
	if v, ok := RatInt64(RatInt(-9)); !ok || v != -9 {
		t.Errorf("RatInt64 = %d,%v", v, ok)
	}
	if _, ok := RatInt64(Rat(1, 2)); ok {
		t.Error("RatInt64(1/2) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("Rat(1,0) did not panic")
		}
	}()
	Rat(1, 0)
}

// Faulhaber sanity: sum_{x=1}^{n} x^m computed via BernoulliPlus matches
// brute force. This is the identity the ehrhart package depends on.
func TestFaulhaberIdentity(t *testing.T) {
	for m := 0; m <= 8; m++ {
		for n := int64(0); n <= 25; n++ {
			// closed form
			cf := new(big.Rat)
			for j := 0; j <= m; j++ {
				term := new(big.Rat).SetInt(Binomial(m+1, j))
				term.Mul(term, BernoulliPlus(j))
				np := new(big.Rat).SetInt64(1)
				for p := 0; p < m+1-j; p++ {
					np.Mul(np, big.NewRat(n, 1))
				}
				term.Mul(term, np)
				cf.Add(cf, term)
			}
			cf.Mul(cf, big.NewRat(1, int64(m+1)))
			// brute force
			bf := new(big.Rat)
			for x := int64(1); x <= n; x++ {
				xp := big.NewRat(1, 1)
				for p := 0; p < m; p++ {
					xp.Mul(xp, big.NewRat(x, 1))
				}
				bf.Add(bf, xp)
			}
			if cf.Cmp(bf) != 0 {
				t.Fatalf("Faulhaber m=%d n=%d: closed=%s brute=%s", m, n, cf, bf)
			}
		}
	}
}
