package main

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/unrank"
)

func captureRun(t *testing.T, nestSpec string, params paramFlags, args []string) (string, error) {
	t.Helper()
	return captureRunDeadline(t, nestSpec, params, 0, args)
}

func captureRunDeadline(t *testing.T, nestSpec string, params paramFlags, deadline time.Duration, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := run(nestSpec, params, deadline, 1, "dynamic,4096", args)
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

const triSpec = "i=0:N-1; j=i+1:N"

func TestRankqTotal(t *testing.T) {
	out, err := captureRun(t, triSpec, paramFlags{"N": 10}, []string{"total"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "45" {
		t.Errorf("total = %q", out)
	}
}

func TestRankqRankUnrankRoundTrip(t *testing.T) {
	out, err := captureRun(t, triSpec, paramFlags{"N": 10}, []string{"rank", "3", "5"})
	if err != nil {
		t.Fatal(err)
	}
	rank := strings.TrimSpace(out)
	out, err = captureRun(t, triSpec, paramFlags{"N": 10}, []string{"unrank", rank})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "i=3 j=5" {
		t.Errorf("unrank(%s) = %q", rank, out)
	}
}

func TestRankqPolyAndRoots(t *testing.T) {
	out, err := captureRun(t, triSpec, nil, []string{"poly"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r(i, j)") || !strings.Contains(out, "count") {
		t.Errorf("poly output: %q", out)
	}
	out, err = captureRun(t, triSpec, nil, []string{"roots"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sqrt(") || !strings.Contains(out, "direct formula") {
		t.Errorf("roots output: %q", out)
	}
}

func TestRankqList(t *testing.T) {
	out, err := captureRun(t, "i=0:3; j=i:3", paramFlags{}, []string{"list"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // (0,0)(0,1)(0,2)(1,1)(1,2)(2,2)
		t.Errorf("list lines = %d:\n%s", len(lines), out)
	}
}

func TestRankqErrors(t *testing.T) {
	cases := []struct {
		spec   string
		params paramFlags
		args   []string
	}{
		{"", nil, []string{"total"}},
		{"i=0", nil, []string{"total"}},
		{"i0:N", nil, []string{"total"}},
		{triSpec, paramFlags{"N": 10}, []string{}},
		{triSpec, paramFlags{"N": 10}, []string{"bogus"}},
		{triSpec, paramFlags{"N": 10}, []string{"rank", "1"}},
		{triSpec, paramFlags{"N": 10}, []string{"rank", "5", "5"}}, // not in domain
		{triSpec, paramFlags{"N": 10}, []string{"unrank"}},
		{triSpec, paramFlags{"N": 10}, []string{"unrank", "9999"}},
		{triSpec, paramFlags{"N": 10}, []string{"unrank", "x"}},
		{triSpec, nil, []string{"total"}}, // missing param binding
		{"i=0:i^2", nil, []string{"total"}},
	}
	for _, c := range cases {
		if _, err := captureRun(t, c.spec, c.params, c.args); err == nil {
			t.Errorf("spec %q args %v: expected error", c.spec, c.args)
		}
	}
}

func TestRankqRunCommand(t *testing.T) {
	out, err := captureRun(t, triSpec, paramFlags{"N": 10}, []string{"run"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ran 45 iterations") {
		t.Errorf("run output: %q", out)
	}
}

func TestRankqRunDeadline(t *testing.T) {
	// A deadline that has effectively already expired: the team must stop
	// cooperatively and report the typed cancellation, not run to
	// completion or hang.
	_, err := captureRunDeadline(t, triSpec, paramFlags{"N": 2000}, time.Nanosecond, []string{"run"})
	if err == nil {
		t.Fatal("1ns deadline did not expire")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("deadline error: %v", err)
	}
}

func TestParamFlags(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("N=10"); err != nil || p["N"] != 10 {
		t.Errorf("Set: %v, %v", p, err)
	}
	if err := p.Set(" M = 5 "); err != nil || p["M"] != 5 {
		t.Errorf("Set with spaces: %v, %v", p, err)
	}
	if err := p.Set("bad"); err == nil {
		t.Error("bad flag accepted")
	}
	if err := p.Set("N=x"); err == nil {
		t.Error("non-integer accepted")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestRankqHugeTotal(t *testing.T) {
	// N = 2^32 makes the count 2^64: beyond the int64 pc range, so
	// unranking is refused, but "total" still answers exactly from the
	// counting polynomial over big integers.
	out, err := captureRun(t, "i=0:N; j=0:N", paramFlags{"N": 1 << 32}, []string{"total"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "18446744073709551616" {
		t.Errorf("huge total = %q, want 2^64", out)
	}
	// Everything else must still refuse the overflowing domain.
	if _, err := captureRun(t, "i=0:N; j=0:N", paramFlags{"N": 1 << 32}, []string{"unrank", "5"}); err == nil {
		t.Error("unrank on an overflowing domain should fail")
	}
}

// TestRankqMode checks the -mode plumbing: breakpoint-table and
// binary-search modes answer unrank queries identically to the
// closed-form default, a degree-5 simplex (beyond radical solvability,
// so the closed-form build must reject it) still unranks under -mode
// table, and an unknown spelling is the typed faults.ErrUnknownMode.
func TestRankqMode(t *testing.T) {
	setMode := func(s string) {
		t.Helper()
		m, err := unrank.ParseMode(s)
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
		recoveryMode = m
	}
	defer func() { recoveryMode = unrank.ModeClosedForm }()

	want := ""
	for _, mode := range []string{"closed-form", "search", "table"} {
		setMode(mode)
		out, err := captureRun(t, triSpec, paramFlags{"N": 10}, []string{"unrank", "29"})
		if err != nil {
			t.Fatalf("-mode %s: %v", mode, err)
		}
		if want == "" {
			want = out
		} else if out != want {
			t.Errorf("-mode %s unrank = %q, closed-form said %q", mode, out, want)
		}
	}

	const simplex = "a=0:N; b=0:a+1; c=0:b+1; d=0:c+1; e=0:d+1"
	setMode("closed-form")
	if _, err := captureRun(t, simplex, paramFlags{"N": 10}, []string{"unrank", "500"}); !errors.Is(err, faults.ErrDegreeTooHigh) {
		t.Fatalf("degree-5 closed-form err = %v, want ErrDegreeTooHigh", err)
	}
	setMode("table")
	out, err := captureRun(t, simplex, paramFlags{"N": 10}, []string{"unrank", "500"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "a=7 b=4 c=1 d=1 e=0" {
		t.Errorf("table unrank 500 = %q", out)
	}
	if _, err := captureRun(t, simplex, paramFlags{"N": 10}, []string{"roots"}); err == nil {
		t.Error("roots under -mode table: expected an error pointing at closed-form")
	}

	if _, err := unrank.ParseMode("bogus"); !errors.Is(err, faults.ErrUnknownMode) {
		t.Errorf("ParseMode(bogus) = %v, want ErrUnknownMode", err)
	}
}

func TestRankqRunSchedAuto(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := run(triSpec, paramFlags{"N": 30}, 0, 2, "auto", []string{"run"})
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	if !strings.Contains(out, "ran 435 iterations tuned (schedule ") {
		t.Errorf("tuned run output: %q", out)
	}
	if !strings.Contains(out, "autotune: predicted ") {
		t.Errorf("tuned run missing predicted-vs-actual: %q", out)
	}
}
